//! Online calibration: background DPO updates, hot model swap and A/B
//! routing for the serving engine.
//!
//! The paper's dynamic-calibration experiment (Sec. 5.1) runs offline:
//! [`crate::calibrate::DpoCalibrator`] consumes profiler feedback in a
//! synchronous loop. This module turns it into a *serving* capability:
//!
//! * every [`crate::Session`] forwards its feedback triples into a shared,
//!   bounded [`FeedbackQueue`] owned by the [`Engine`] (lossy beyond
//!   capacity — feedback is advisory, serving never blocks on training);
//! * a [`Calibrator`] background worker drains the queue, runs DPO
//!   minibatch updates on a **clone** of the live model, and publishes the
//!   result into the engine registry via the existing latest-wins hot swap
//!   — the swap epoch in every [`crate::PredictResponse`] attributes each
//!   answer to the exact model version that produced it;
//! * an [`AbRouter`] deterministically splits requests that name no model
//!   across registered variants (hash of the request id, configurable
//!   weights), and a [`Scoreboard`] keeps per-model rolling accuracy and
//!   latency ([`ModelScorecard`], surfaced through `{"stats": true}`);
//! * a guardrail demotes a calibrated variant whose rolling error exceeds
//!   the incumbent's by a configured margin (swap back to the frozen
//!   reference, counted in `calibrations_rolled_back`);
//! * calibrated weights persist through the versioned model envelope
//!   ([`CalibrationMeta`] plus atomic checkpoints), so a restarted daemon
//!   resumes its learned corrections.
//!
//! Determinism contract: the gradient step is single-threaded and
//! [`CalibratorCore::ingest`] sorts each drained batch canonically before
//! updating, so any collection schedule producing the same *multiset* of
//! triples (e.g. the serve pool at 1, 2 or 4 workers) yields bit-identical
//! model deltas under a fixed seed.

use crate::calibrate::{DpoCalibrator, DpoConfig, PreferenceTriple};
use crate::engine::Engine;
use crate::error::Error;
use crate::model::NumericPredictor;
use llmulator_sim::Metric;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering as CmpOrdering;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks `mutex`, recovering from poisoning (see the serve-pool rationale:
/// every critical section leaves the data structurally valid).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Feedback queue
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FeedbackState {
    items: VecDeque<PreferenceTriple>,
    closed: bool,
}

/// The shared, bounded cross-session feedback queue.
///
/// Sessions push preference triples as requests carry feedback; the
/// calibrator drains them in batches. Pushing never blocks: beyond
/// `capacity` the *newest* triple is dropped and counted — losing advisory
/// training signal is always preferable to stalling a serving thread. A
/// capacity of 0 disables the queue entirely (every push is a cheap no-op),
/// which is the default for engines that run no calibrator.
#[derive(Debug)]
pub struct FeedbackQueue {
    state: Mutex<FeedbackState>,
    available: Condvar,
    capacity: usize,
    accepted: AtomicU64,
    dropped: AtomicU64,
}

impl FeedbackQueue {
    /// A queue holding at most `capacity` triples (0 = disabled).
    pub fn new(capacity: usize) -> FeedbackQueue {
        FeedbackQueue {
            state: Mutex::new(FeedbackState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// True when the queue accepts triples at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one triple. Returns `true` when it was enqueued; `false` when
    /// the queue is disabled, closed or full (full offers count as dropped).
    pub fn push(&self, triple: PreferenceTriple) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return false;
        }
        if state.items.len() >= self.capacity {
            drop(state);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        state.items.push_back(triple);
        drop(state);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
        true
    }

    /// Takes everything currently queued without blocking.
    pub fn drain_now(&self) -> Vec<PreferenceTriple> {
        lock_unpoisoned(&self.state).items.drain(..).collect()
    }

    /// Takes everything queued, blocking up to `timeout` for the first
    /// triple. Returns an empty batch on timeout or when the queue closed
    /// while empty (check [`FeedbackQueue::is_closed`] to distinguish).
    pub fn drain_wait(&self, timeout: Duration) -> Vec<PreferenceTriple> {
        let mut state = lock_unpoisoned(&self.state);
        if state.items.is_empty() && !state.closed {
            let (guard, _) = self
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        state.items.drain(..).collect()
    }

    /// Closes the queue: later pushes are refused and blocked drains wake.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.available.notify_all();
    }

    /// True once [`FeedbackQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }

    /// Triples currently queued.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Triples accepted over the queue's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Triples dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// A/B router
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the canonical route key for a wire request id.
pub fn route_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: decorrelates structured keys (sequential ids,
/// FNV of short strings) before the modulo split.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic weighted A/B split over registered model variants.
///
/// Routing is a pure function of the route key: the mixed key modulo the
/// total weight selects a variant by cumulative weight, so the same request
/// id always lands on the same variant (sticky assignment across retries
/// and restarts) and long-run traffic shares converge to the weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbRouter {
    variants: Vec<(String, u32)>,
    total: u64,
}

impl AbRouter {
    /// A router over `(model name, weight)` variants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when no variant has positive
    /// weight.
    pub fn new(variants: Vec<(String, u32)>) -> Result<AbRouter, Error> {
        let total: u64 = variants.iter().map(|(_, w)| u64::from(*w)).sum();
        if total == 0 {
            return Err(Error::InvalidArgument(
                "A/B router needs at least one variant with positive weight".into(),
            ));
        }
        Ok(AbRouter { variants, total })
    }

    /// The configured `(name, weight)` variants.
    pub fn variants(&self) -> &[(String, u32)] {
        &self.variants
    }

    /// Picks the variant for a route key (pure and total).
    pub fn pick(&self, key: u64) -> &str {
        let mut slot = mix64(key) % self.total;
        for (name, weight) in &self.variants {
            let weight = u64::from(*weight);
            if slot < weight {
                return name;
            }
            slot -= weight;
        }
        // Unreachable: the slot is < total and the weights sum to total.
        &self.variants[self.variants.len() - 1].0
    }
}

// ---------------------------------------------------------------------------
// Scoreboard
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ScoreEntry {
    model: String,
    ok_requests: u64,
    feedback_count: u64,
    errors: VecDeque<f64>,
    latency_us_sum: u64,
    latency_count: u64,
}

/// A point-in-time per-model accounting snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelScorecard {
    /// Registered model name.
    pub model: String,
    /// Requests this model answered successfully (via the serve pool).
    pub ok_requests: u64,
    /// Feedback observations recorded against this model (lifetime).
    pub feedback_count: u64,
    /// Feedback observations inside the current rolling window.
    pub window_len: usize,
    /// Mean absolute-relative-error over the rolling window, once any
    /// feedback arrived.
    pub rolling_error: Option<f64>,
    /// Mean serve latency in microseconds, once any request completed.
    pub mean_latency_us: Option<f64>,
}

/// Per-model rolling accuracy and latency accounting.
///
/// Accuracy is the mean absolute-relative-error of client-reported feedback
/// (`|actual - predicted| / |actual|`) over a sliding window, the signal
/// the rollback guardrail compares variants on. Latency is recorded by the
/// serve pool per completed ok response.
#[derive(Debug)]
pub struct Scoreboard {
    entries: Mutex<Vec<ScoreEntry>>,
    window: usize,
}

impl Scoreboard {
    /// A scoreboard with the given rolling-error window (clamped ≥ 1).
    pub fn new(window: usize) -> Scoreboard {
        Scoreboard {
            entries: Mutex::new(Vec::new()),
            window: window.max(1),
        }
    }

    /// The rolling-error window length.
    pub fn window(&self) -> usize {
        self.window
    }

    fn with_entry<R>(&self, model: &str, f: impl FnOnce(&mut ScoreEntry) -> R) -> R {
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(entry) = entries.iter_mut().find(|e| e.model == model) {
            return f(entry);
        }
        entries.push(ScoreEntry {
            model: model.to_string(),
            ok_requests: 0,
            feedback_count: 0,
            errors: VecDeque::new(),
            latency_us_sum: 0,
            latency_count: 0,
        });
        let last = entries.len() - 1;
        f(&mut entries[last])
    }

    /// Counts one ok response and its serve latency against `model`.
    pub fn record_ok(&self, model: &str, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.with_entry(model, |e| {
            e.ok_requests += 1;
            e.latency_us_sum = e.latency_us_sum.saturating_add(us);
            e.latency_count += 1;
        });
    }

    /// Records one feedback observation's absolute-relative-error.
    pub fn record_feedback_error(&self, model: &str, abs_rel_error: f64) {
        let window = self.window;
        self.with_entry(model, |e| {
            e.feedback_count += 1;
            if e.errors.len() == window {
                e.errors.pop_front();
            }
            e.errors.push_back(abs_rel_error);
        });
    }

    /// The rolling error and window occupancy for one model.
    pub fn rolling_error(&self, model: &str) -> Option<(f64, usize)> {
        let entries = lock_unpoisoned(&self.entries);
        let entry = entries.iter().find(|e| e.model == model)?;
        if entry.errors.is_empty() {
            return None;
        }
        let mean = entry.errors.iter().sum::<f64>() / entry.errors.len() as f64;
        Some((mean, entry.errors.len()))
    }

    /// Clears one model's rolling-error window (a demoted variant re-earns
    /// trust from scratch; lifetime counters are kept).
    pub fn reset_window(&self, model: &str) {
        self.with_entry(model, |e| e.errors.clear());
    }

    /// Scorecards for every model touched so far, in first-touch order.
    pub fn snapshot(&self) -> Vec<ModelScorecard> {
        let entries = lock_unpoisoned(&self.entries);
        entries
            .iter()
            .map(|e| ModelScorecard {
                model: e.model.clone(),
                ok_requests: e.ok_requests,
                feedback_count: e.feedback_count,
                window_len: e.errors.len(),
                rolling_error: if e.errors.is_empty() {
                    None
                } else {
                    Some(e.errors.iter().sum::<f64>() / e.errors.len() as f64)
                },
                mean_latency_us: if e.latency_count == 0 {
                    None
                } else {
                    Some(e.latency_us_sum as f64 / e.latency_count as f64)
                },
            })
            .collect()
    }
}

/// The absolute-relative-error of one feedback observation, the unit the
/// scoreboard accumulates. `actual == 0` degenerates to 0/1 (right/wrong).
pub fn abs_rel_error(actual: f64, predicted: f64) -> f64 {
    if actual == 0.0 {
        return if predicted == 0.0 { 0.0 } else { 1.0 };
    }
    ((actual - predicted) / actual).abs()
}

// ---------------------------------------------------------------------------
// Calibration counters + stats
// ---------------------------------------------------------------------------

/// Lifetime counters of the calibration subsystem, owned by the engine so
/// any stats surface can read them without reaching into the worker.
#[derive(Debug, Default)]
pub struct CalibrationCounters {
    /// DPO gradient steps applied.
    pub updates: AtomicU64,
    /// Calibrated models published into the registry (hot swaps).
    pub hot_swaps: AtomicU64,
    /// Guardrail demotions (variant swapped back to the frozen reference).
    pub rolled_back: AtomicU64,
    /// Checkpoints written.
    pub checkpoints: AtomicU64,
    /// Checkpoint writes that failed (the worker keeps running).
    pub checkpoint_errors: AtomicU64,
}

/// A point-in-time snapshot of the calibration subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationStats {
    /// DPO gradient steps applied.
    pub updates: u64,
    /// Calibrated models hot-swapped into the registry.
    pub hot_swaps: u64,
    /// Guardrail demotions.
    pub calibrations_rolled_back: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Failed checkpoint writes.
    pub checkpoint_errors: u64,
    /// Feedback triples currently queued.
    pub queue_depth: usize,
    /// Feedback triples accepted into the queue (lifetime).
    pub feedback_accepted: u64,
    /// Feedback triples dropped at a full queue (lifetime).
    pub feedback_dropped: u64,
}

// ---------------------------------------------------------------------------
// Persistence metadata
// ---------------------------------------------------------------------------

/// Provenance of a calibrated checkpoint, stored next to the model payload
/// in the versioned envelope (format version ≥ 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalibrationMeta {
    /// DPO gradient steps folded into these weights.
    pub updates: u64,
    /// Hot swaps published before this checkpoint.
    pub hot_swaps: u64,
    /// Name of the incumbent model calibration started from.
    pub source: String,
}

// ---------------------------------------------------------------------------
// Calibrator core (synchronous, testable) + background worker
// ---------------------------------------------------------------------------

/// Configuration of the online calibration loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Registry name the calibrated variant publishes under.
    pub variant: String,
    /// Registry name of the frozen incumbent the guardrail compares to.
    pub incumbent: String,
    /// DPO hyper-parameters (fixed seed ⇒ deterministic updates).
    pub dpo: DpoConfig,
    /// Publish a hot swap after this many gradient steps (clamped ≥ 1).
    pub swap_every: u64,
    /// Demote when the variant's rolling error exceeds the incumbent's by
    /// more than this margin.
    pub rollback_margin: f64,
    /// Minimum rolling-window occupancy (both models) before the guardrail
    /// compares.
    pub min_window: usize,
    /// Write a checkpoint after this many gradient steps (0 = only the
    /// final checkpoint on shutdown).
    pub checkpoint_every: u64,
    /// Checkpoint destination; `None` disables persistence.
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            variant: "calibrated".to_string(),
            incumbent: "default".to_string(),
            dpo: DpoConfig::default(),
            swap_every: 1,
            rollback_margin: 0.25,
            min_window: 8,
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }
}

/// Canonical order for a drained feedback batch: (metric, tokens, y_w,
/// y_l). Collection order depends on worker scheduling; sorting restores a
/// schedule-independent update sequence (same multiset ⇒ same updates).
fn sort_triples(triples: &mut [PreferenceTriple]) {
    let metric_index =
        |m: Metric| -> usize { Metric::all().iter().position(|&x| x == m).unwrap_or(0) };
    triples.sort_by(|a, b| {
        metric_index(a.metric)
            .cmp(&metric_index(b.metric))
            .then_with(|| a.tokens.cmp(&b.tokens))
            .then_with(|| a.y_w.cmp(&b.y_w))
            .then_with(|| a.y_l.cmp(&b.y_l))
    });
}

/// The synchronous calibration state machine: ingest sorted feedback
/// batches, publish hot swaps, enforce the rollback guardrail, write
/// checkpoints. [`Calibrator::spawn`] drives it from a background thread;
/// tests drive it directly for deterministic, single-threaded updates.
#[derive(Debug)]
pub struct CalibratorCore {
    engine: Arc<Engine>,
    config: CalibrationConfig,
    model: NumericPredictor,
    dpo: DpoCalibrator,
    steps_since_swap: u64,
    steps_since_checkpoint: u64,
}

impl CalibratorCore {
    /// Starts calibration from `start` (the incumbent's clone, or a resumed
    /// checkpoint) and registers it in the engine under the variant name,
    /// so the A/B router can target it immediately.
    pub fn new(engine: Arc<Engine>, start: NumericPredictor, config: CalibrationConfig) -> Self {
        let dpo = DpoCalibrator::new(&start, config.dpo);
        engine.register_predictor(config.variant.clone(), start.clone());
        CalibratorCore {
            engine,
            config,
            model: start,
            dpo,
            steps_since_swap: 0,
            steps_since_checkpoint: 0,
        }
    }

    /// The engine this calibrator publishes into.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The working model (the next model to be published).
    pub fn model(&self) -> &NumericPredictor {
        &self.model
    }

    /// The loop configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Folds one drained batch into the working model; returns the number
    /// of gradient steps applied. The batch is sorted canonically first
    /// (see [`sort_triples`]), making the update sequence independent of
    /// the collection schedule.
    pub fn ingest(&mut self, mut triples: Vec<PreferenceTriple>) -> u64 {
        sort_triples(&mut triples);
        let mut steps = 0u64;
        for triple in triples {
            steps += self.dpo.observe_triple(&mut self.model, triple) as u64;
        }
        if steps > 0 {
            self.steps_since_swap += steps;
            self.steps_since_checkpoint += steps;
            self.engine
                .calibration()
                .updates
                .fetch_add(steps, Ordering::Relaxed);
        }
        steps
    }

    /// Publishes the working model when enough steps accumulated since the
    /// last swap; returns whether a swap happened.
    pub fn maybe_swap(&mut self) -> bool {
        if self.steps_since_swap == 0 || self.steps_since_swap < self.config.swap_every.max(1) {
            return false;
        }
        self.publish();
        true
    }

    /// Unconditionally hot-swaps the working model into the registry.
    pub fn publish(&mut self) {
        self.engine
            .register_predictor(self.config.variant.clone(), self.model.clone());
        self.engine
            .calibration()
            .hot_swaps
            .fetch_add(1, Ordering::Relaxed);
        self.steps_since_swap = 0;
    }

    /// The guardrail: when both rolling windows are warm and the variant's
    /// error exceeds the incumbent's by more than the margin, the frozen
    /// reference is republished under the variant name, the variant's
    /// window is reset and calibration restarts from the reference.
    pub fn maybe_rollback(&mut self) -> bool {
        let scores = self.engine.scoreboard();
        let Some((variant_err, variant_n)) = scores.rolling_error(&self.config.variant) else {
            return false;
        };
        let Some((incumbent_err, incumbent_n)) = scores.rolling_error(&self.config.incumbent)
        else {
            return false;
        };
        if variant_n < self.config.min_window || incumbent_n < self.config.min_window {
            return false;
        }
        match variant_err.partial_cmp(&(incumbent_err + self.config.rollback_margin)) {
            Some(CmpOrdering::Greater) => {}
            _ => return false,
        }
        self.model = self.dpo.reference().clone();
        self.dpo = DpoCalibrator::new(&self.model, self.config.dpo);
        self.engine
            .register_predictor(self.config.variant.clone(), self.model.clone());
        self.engine.scoreboard().reset_window(&self.config.variant);
        self.engine
            .calibration()
            .rolled_back
            .fetch_add(1, Ordering::Relaxed);
        self.steps_since_swap = 0;
        true
    }

    /// Writes an atomic checkpoint of the working model (with
    /// [`CalibrationMeta`] provenance) when a path is configured; returns
    /// whether one was written.
    ///
    /// # Errors
    ///
    /// Propagates the persistence failure (the caller decides whether to
    /// keep calibrating).
    pub fn checkpoint(&mut self) -> Result<bool, Error> {
        let Some(path) = self.config.checkpoint_path.clone() else {
            return Ok(false);
        };
        let counters = self.engine.calibration();
        let meta = CalibrationMeta {
            updates: counters.updates.load(Ordering::Relaxed),
            hot_swaps: counters.hot_swaps.load(Ordering::Relaxed),
            source: self.config.incumbent.clone(),
        };
        self.model.save_calibrated(&path, &meta).map_err(|e| {
            Error::from(e).context(format!("cannot write checkpoint `{}`", path.display()))
        })?;
        self.steps_since_checkpoint = 0;
        counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    fn maybe_checkpoint(&mut self) -> Result<bool, Error> {
        if self.config.checkpoint_every == 0
            || self.steps_since_checkpoint < self.config.checkpoint_every
        {
            return Ok(false);
        }
        self.checkpoint()
    }

    /// One full background cycle: ingest, maybe swap, guardrail, maybe
    /// checkpoint (checkpoint failures are counted, never fatal). Returns
    /// the gradient steps applied.
    pub fn run_cycle(&mut self, triples: Vec<PreferenceTriple>) -> u64 {
        let steps = self.ingest(triples);
        self.maybe_swap();
        self.maybe_rollback();
        if self.maybe_checkpoint().is_err() {
            self.engine
                .calibration()
                .checkpoint_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        steps
    }
}

/// How long the background worker blocks waiting for feedback before
/// re-checking the guardrail and the shutdown flag.
const DRAIN_WAIT: Duration = Duration::from_millis(50);

/// Handle to the background calibration worker. Dropping (or
/// [`Calibrator::stop`]) closes the feedback queue, joins the thread and —
/// when a checkpoint path is configured — leaves a final checkpoint on
/// disk.
#[derive(Debug)]
pub struct Calibrator {
    engine: Arc<Engine>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Calibrator {
    /// Spawns the worker thread around a prepared [`CalibratorCore`].
    pub fn spawn(core: CalibratorCore) -> Calibrator {
        let engine = Arc::clone(core.engine());
        let handle = std::thread::Builder::new()
            .name("llmulator-calibrator".to_string())
            .spawn(move || calibrator_loop(core))
            .ok();
        Calibrator { engine, handle }
    }

    /// The engine the worker publishes into.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful shutdown: close the queue, join the worker (it drains the
    /// remaining feedback and writes the final checkpoint first).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.engine.feedback().close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Calibrator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn calibrator_loop(mut core: CalibratorCore) {
    let engine = Arc::clone(core.engine());
    loop {
        let batch = engine.feedback().drain_wait(DRAIN_WAIT);
        if !batch.is_empty() {
            core.run_cycle(batch);
        } else if engine.feedback().is_closed() {
            break;
        } else {
            // Idle tick: feedback against the incumbent may have arrived
            // without new training signal — still enforce the guardrail.
            core.maybe_rollback();
        }
    }
    // Final state: publish what was learned, then checkpoint it.
    if core.steps_since_swap > 0 {
        core.publish();
    }
    if core.checkpoint().is_err() {
        engine
            .calibration()
            .checkpoint_errors
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(i: u64) -> PreferenceTriple {
        PreferenceTriple {
            tokens: vec![i as u32, (i * 7) as u32],
            metric: Metric::Cycles,
            y_w: i + 100,
            y_l: i,
        }
    }

    #[test]
    fn queue_is_bounded_and_counts_accept_and_drop() {
        let queue = FeedbackQueue::new(2);
        assert!(queue.is_enabled());
        assert!(queue.push(triple(0)));
        assert!(queue.push(triple(1)));
        assert!(!queue.push(triple(2)), "full queue drops the newest");
        assert_eq!((queue.accepted(), queue.dropped(), queue.len()), (2, 1, 2));
        let drained = queue.drain_now();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].y_w, 100, "FIFO order");
        assert!(queue.is_empty());
        assert!(queue.push(triple(3)), "drained queue accepts again");
    }

    #[test]
    fn disabled_queue_refuses_without_counting() {
        let queue = FeedbackQueue::new(0);
        assert!(!queue.is_enabled());
        assert!(!queue.push(triple(0)));
        assert_eq!((queue.accepted(), queue.dropped()), (0, 0));
    }

    #[test]
    fn closed_queue_wakes_drainers_and_refuses_pushes() {
        let queue = Arc::new(FeedbackQueue::new(8));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.drain_wait(Duration::from_secs(30)))
        };
        queue.close();
        let drained = waiter.join().expect("joins");
        assert!(drained.is_empty());
        assert!(queue.is_closed());
        assert!(!queue.push(triple(0)));
    }

    #[test]
    fn drain_wait_returns_pushed_triples() {
        let queue = Arc::new(FeedbackQueue::new(8));
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                queue.push(triple(5));
            })
        };
        // Either the push lands before the drain (immediate) or the condvar
        // wakes the drain; both return the triple within the long timeout.
        let mut got = Vec::new();
        for _ in 0..200 {
            got = queue.drain_wait(Duration::from_millis(100));
            if !got.is_empty() {
                break;
            }
        }
        pusher.join().expect("joins");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].y_w, 105);
    }

    #[test]
    fn router_is_a_deterministic_partition() {
        let router = AbRouter::new(vec![("a".into(), 3), ("b".into(), 1)]).expect("valid");
        for key in 0..256u64 {
            assert_eq!(router.pick(key), router.pick(key), "sticky per key");
        }
        let to_a = (0..4096u64).filter(|&k| router.pick(k) == "a").count();
        // 3:1 split over mixed sequential keys: expect ~3072, allow slack.
        assert!(
            (2800..3350).contains(&to_a),
            "weights roughly respected: {to_a}/4096"
        );
    }

    #[test]
    fn router_rejects_zero_total_weight_and_honors_zero_weight_variants() {
        assert!(AbRouter::new(vec![]).is_err());
        assert!(AbRouter::new(vec![("a".into(), 0)]).is_err());
        let router = AbRouter::new(vec![("a".into(), 0), ("b".into(), 5)]).expect("valid");
        assert!((0..512u64).all(|k| router.pick(k) == "b"));
    }

    #[test]
    fn route_key_is_stable_fnv() {
        // FNV-1a test vector: the empty input hashes to the offset basis.
        assert_eq!(route_key(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(route_key(b"\"c0-r0\""), route_key(b"\"c0-r0\""));
        assert_ne!(route_key(b"\"c0-r0\""), route_key(b"\"c0-r1\""));
    }

    #[test]
    fn scoreboard_windows_roll_and_reset() {
        let scores = Scoreboard::new(2);
        scores.record_feedback_error("m", 1.0);
        scores.record_feedback_error("m", 0.5);
        scores.record_feedback_error("m", 0.1);
        let (err, n) = scores.rolling_error("m").expect("warm");
        assert_eq!(n, 2, "window slides");
        assert!((err - 0.3).abs() < 1e-12, "mean of the last two: {err}");
        scores.record_ok("m", Duration::from_micros(500));
        scores.record_ok("m", Duration::from_micros(1500));
        let snap = scores.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].ok_requests, 2);
        assert_eq!(snap[0].feedback_count, 3);
        assert_eq!(snap[0].mean_latency_us, Some(1000.0));
        scores.reset_window("m");
        assert!(scores.rolling_error("m").is_none());
        let snap = scores.snapshot();
        assert_eq!(snap[0].feedback_count, 3, "lifetime counter survives");
    }

    #[test]
    fn abs_rel_error_handles_zero_actual() {
        assert_eq!(abs_rel_error(0.0, 0.0), 0.0);
        assert_eq!(abs_rel_error(0.0, 5.0), 1.0);
        assert!((abs_rel_error(100.0, 150.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triples_sort_canonically() {
        let mut batch = vec![triple(3), triple(1), triple(2)];
        sort_triples(&mut batch);
        let order: Vec<u64> = batch.iter().map(|t| t.y_l).collect();
        assert_eq!(order, vec![1, 2, 3]);
        // Metric dominates the token order.
        let mut batch = vec![
            PreferenceTriple {
                tokens: vec![1],
                metric: Metric::Cycles,
                y_w: 1,
                y_l: 0,
            },
            PreferenceTriple {
                tokens: vec![9],
                metric: Metric::all()[0],
                y_w: 1,
                y_l: 0,
            },
        ];
        sort_triples(&mut batch);
        assert_eq!(batch[0].metric, Metric::all()[0]);
    }
}
