//! The long-lived prediction engine behind every serving surface.
//!
//! The paper's deployment story is a cost model queried repeatedly —
//! design-space sweeps, online calibration against profiler feedback
//! (Sec. 5.1) — which needs a persistent query engine, not one-shot entry
//! points. This module is that engine:
//!
//! * an [`Engine`] owns a registry of named loaded models (the
//!   [`NumericPredictor`] and any [`CostModel`] baseline, behind the
//!   object-safe [`ServableModel`] trait) plus serving defaults
//!   ([`EngineConfig`], builder-style);
//! * a [`Session`] holds the per-client mutable state — a
//!   [`Scratch`] arena and [`BeamScratch`] reused across requests so
//!   steady-state serving allocates nothing per call, and a
//!   [`ReplayBuffer`] that accumulates calibration feedback triples;
//! * typed [`PredictRequest`] / [`PredictResponse`] messages carry program
//!   source or pre-tokenized input, a metric subset, beam-width and
//!   thread-count overrides, and optional profiler feedback.
//!
//! Predictions route through the fused
//! [`NumericPredictor::predict_tokens_batch_threads`] path (or the
//! session-scratch single-input path, which is bit-identical to it), so an
//! engine answer is exactly equal to calling the predictor directly.
//! [`Session::predict_micro_batch`] additionally packs the inputs of many
//! queued requests into one fused batch — the `llmulator serve` daemon's
//! hot path.

use crate::calibrate::{PreferenceTriple, ReplayBuffer};
use crate::dataset::{CostModel, Sample};
use crate::encode::SegmentedText;
use crate::error::Error;
use crate::model::{NumericPredictor, Prediction};
use crate::numeric::{metric_to_int, BeamScratch};
use crate::online::{
    abs_rel_error, AbRouter, CalibrationCounters, CalibrationStats, FeedbackQueue, Scoreboard,
};
use llmulator_ir::{parse, InputData, Program};
use llmulator_nn::Scratch;
use llmulator_sim::{CostVector, Metric};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks, recovering from poisoning (registry writes are
/// structurally atomic — a panic mid-registration leaves a valid list).
fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks, recovering from poisoning (same rationale).
fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// The unified object-safe interface every servable model implements.
///
/// Baselines come in through the blanket [`CostModel`] supertrait; the
/// [`NumericPredictor`] additionally exposes itself via
/// [`ServableModel::as_predictor`], which unlocks the fused token path,
/// pre-tokenized inputs, digit confidences and calibration feedback.
pub trait ServableModel: CostModel + Send + Sync {
    /// The numeric predictor behind this model, when it is one.
    fn as_predictor(&self) -> Option<&NumericPredictor> {
        None
    }
}

impl ServableModel for NumericPredictor {
    fn as_predictor(&self) -> Option<&NumericPredictor> {
        Some(self)
    }
}

/// Adapter giving any [`CostModel`] a [`ServableModel`] face (used by
/// [`Engine::register_baseline`]; a blanket impl would conflict with the
/// predictor's specialized one).
struct BaselineModel<M>(M);

impl<M: CostModel> CostModel for BaselineModel<M> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn predict(&self, sample: &Sample) -> CostVector {
        self.0.predict(sample)
    }

    fn predict_batch(&self, samples: &[Sample]) -> Vec<CostVector> {
        self.0.predict_batch(samples)
    }

    fn try_predict_batch(&self, samples: &[Sample]) -> Result<Vec<CostVector>, Error> {
        self.0.try_predict_batch(samples)
    }
}

impl<M: CostModel + Send + Sync> ServableModel for BaselineModel<M> {}

/// Serving defaults, built builder-style:
///
/// ```
/// use llmulator::{Engine, EngineConfig};
/// let engine: Engine = EngineConfig::new()
///     .default_model("prod")
///     .threads(2)
///     .replay_capacity(32)
///     .build();
/// assert!(engine.model_names().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    default_model: String,
    threads: usize,
    replay_capacity: usize,
    feedback_capacity: usize,
    score_window: usize,
}

impl EngineConfig {
    /// Defaults: model name `"default"`, one prediction worker per
    /// available core, replay window of 16 feedback triples, shared
    /// feedback queue disabled, rolling-accuracy window of 64.
    pub fn new() -> EngineConfig {
        EngineConfig {
            default_model: "default".to_string(),
            threads: llmulator_nn::available_threads(),
            replay_capacity: 16,
            feedback_capacity: 0,
            score_window: 64,
        }
    }

    /// Name resolved when a request does not pick a model.
    #[must_use]
    pub fn default_model(mut self, name: impl Into<String>) -> EngineConfig {
        self.default_model = name.into();
        self
    }

    /// Worker threads for batch prediction (clamped to at least 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads.max(1);
        self
    }

    /// Capacity of each session's calibration [`ReplayBuffer`].
    #[must_use]
    pub fn replay_capacity(mut self, capacity: usize) -> EngineConfig {
        self.replay_capacity = capacity;
        self
    }

    /// Capacity of the engine's shared cross-session [`FeedbackQueue`]
    /// (0 = disabled, the default — enable it when a
    /// [`crate::online::Calibrator`] consumes the queue).
    #[must_use]
    pub fn feedback_capacity(mut self, capacity: usize) -> EngineConfig {
        self.feedback_capacity = capacity;
        self
    }

    /// Rolling window of the per-model accuracy [`Scoreboard`].
    #[must_use]
    pub fn score_window(mut self, window: usize) -> EngineConfig {
        self.score_window = window;
        self
    }

    /// Finishes the builder into an empty engine.
    #[must_use]
    pub fn build(self) -> Engine {
        Engine::new(self)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new()
    }
}

/// One registry entry: the model, behind an [`Arc`] so in-flight requests
/// finish on the version they resolved even while a hot swap replaces it.
struct Registered {
    name: String,
    epoch: u64,
    model: Arc<dyn ServableModel>,
}

/// A resolved model: owned name + swap epoch + a strong reference to the
/// exact version the request will be served by. Holding the [`Arc`] (not a
/// registry borrow) is what makes hot swaps non-blocking: a swap only
/// retires the old version once its last in-flight request drops it.
#[derive(Clone)]
pub struct Resolved {
    /// The registered model name the request resolved to.
    pub name: String,
    /// The swap epoch of this registration (monotonic across the engine;
    /// echoed in [`PredictResponse::epoch`]).
    pub epoch: u64,
    /// The model version itself.
    pub model: Arc<dyn ServableModel>,
}

impl std::fmt::Debug for Resolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolved")
            .field("name", &self.name)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// A long-lived prediction engine: named model registry, serving defaults
/// and the online-calibration surfaces (feedback queue, A/B router,
/// per-model scoreboard, calibration counters).
///
/// The engine is `Sync` and every mutating surface takes `&self` behind
/// interior locks, so one engine can back many concurrent [`Session`]s
/// while a background [`crate::online::Calibrator`] hot-swaps models into
/// the registry (latest wins; see [`Resolved`] for why serving threads
/// never block on a swap).
pub struct Engine {
    config: EngineConfig,
    models: RwLock<Vec<Registered>>,
    swap_epoch: AtomicU64,
    router: RwLock<Option<AbRouter>>,
    feedback: FeedbackQueue,
    scores: Scoreboard,
    calibration: CalibrationCounters,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("models", &self.model_names())
            .field("swap_epoch", &self.swap_epoch())
            .finish()
    }
}

impl Engine {
    /// Empty engine with the given serving defaults.
    pub fn new(config: EngineConfig) -> Engine {
        let feedback = FeedbackQueue::new(config.feedback_capacity);
        let scores = Scoreboard::new(config.score_window);
        Engine {
            config,
            models: RwLock::new(Vec::new()),
            swap_epoch: AtomicU64::new(0),
            router: RwLock::new(None),
            feedback,
            scores,
            calibration: CalibrationCounters::default(),
        }
    }

    /// The serving defaults.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers any servable model under `name`. Re-registering a name
    /// replaces the previous model (latest wins) — this is the hot-swap
    /// primitive: in-flight requests keep the version they resolved, new
    /// requests see the replacement and a fresh swap epoch.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        model: Box<dyn ServableModel>,
    ) -> &Engine {
        let name = name.into();
        let model: Arc<dyn ServableModel> = Arc::from(model);
        let mut models = write_unpoisoned(&self.models);
        let epoch = self.swap_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        match models.iter_mut().find(|r| r.name == name) {
            Some(slot) => {
                slot.model = model;
                slot.epoch = epoch;
            }
            None => models.push(Registered { name, epoch, model }),
        }
        self
    }

    /// Registers a trained numeric predictor under `name`.
    pub fn register_predictor(&self, name: impl Into<String>, model: NumericPredictor) -> &Engine {
        self.register_model(name, Box::new(model))
    }

    /// Registers a baseline cost model under `name`.
    pub fn register_baseline<M: CostModel + Send + Sync + 'static>(
        &self,
        name: impl Into<String>,
        model: M,
    ) -> &Engine {
        self.register_model(name, Box::new(BaselineModel(model)))
    }

    /// Loads a predictor from a model file (see [`NumericPredictor::save`])
    /// and registers it under `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`Error::Persist`]-rooted chain naming the file on
    /// filesystem, decode or format-version failure.
    pub fn load_predictor(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<&Engine, Error> {
        let path = path.as_ref();
        let model = NumericPredictor::load(path).map_err(|e| {
            Error::from(e).context(format!("cannot load model `{}`", path.display()))
        })?;
        Ok(self.register_predictor(name, model))
    }

    /// Registered model names, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        read_unpoisoned(&self.models)
            .iter()
            .map(|r| r.name.clone())
            .collect()
    }

    /// True when `name` is registered.
    pub fn has_model(&self, name: &str) -> bool {
        read_unpoisoned(&self.models).iter().any(|r| r.name == name)
    }

    /// The current swap epoch: increments on every (re)registration, so
    /// comparing two responses' [`PredictResponse::epoch`] says whether a
    /// hot swap happened between them.
    pub fn swap_epoch(&self) -> u64 {
        self.swap_epoch.load(Ordering::Relaxed)
    }

    /// Resolves a request's model choice (`None` means the configured
    /// default) against the registry. The returned [`Resolved`] owns a
    /// strong reference to the version it picked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownModel`] listing the loaded names.
    pub fn resolve(&self, name: Option<&str>) -> Result<Resolved, Error> {
        let wanted = name.unwrap_or(&self.config.default_model);
        let models = read_unpoisoned(&self.models);
        models
            .iter()
            .find(|r| r.name == wanted)
            .map(|r| Resolved {
                name: r.name.clone(),
                epoch: r.epoch,
                model: Arc::clone(&r.model),
            })
            .ok_or_else(|| Error::UnknownModel {
                name: wanted.to_string(),
                available: models.iter().map(|r| r.name.clone()).collect(),
            })
    }

    /// Resolves like [`Engine::resolve`], but requests that name no model
    /// are split across variants by the configured [`AbRouter`] (when one
    /// is set) using `route_key` — the serving path's entry point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownModel`] listing the loaded names.
    pub fn resolve_routed(&self, name: Option<&str>, route_key: u64) -> Result<Resolved, Error> {
        if name.is_none() {
            let picked = read_unpoisoned(&self.router)
                .as_ref()
                .map(|router| router.pick(route_key).to_string());
            if let Some(variant) = picked {
                return self.resolve(Some(&variant));
            }
        }
        self.resolve(name)
    }

    /// Installs (or clears) the A/B router splitting default-model traffic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownModel`] when a routed variant is not
    /// registered — a router must never send traffic into a resolution
    /// error.
    pub fn set_router(&self, router: Option<AbRouter>) -> Result<(), Error> {
        if let Some(router) = &router {
            for (name, weight) in router.variants() {
                if *weight > 0 && !self.has_model(name) {
                    return Err(Error::UnknownModel {
                        name: name.clone(),
                        available: self.model_names(),
                    });
                }
            }
        }
        *write_unpoisoned(&self.router) = router;
        Ok(())
    }

    /// The installed A/B router, when one is set.
    pub fn router(&self) -> Option<AbRouter> {
        read_unpoisoned(&self.router).clone()
    }

    /// The shared cross-session feedback queue (disabled unless
    /// [`EngineConfig::feedback_capacity`] is positive).
    pub fn feedback(&self) -> &FeedbackQueue {
        &self.feedback
    }

    /// The per-model rolling accuracy/latency scoreboard.
    pub fn scoreboard(&self) -> &Scoreboard {
        &self.scores
    }

    /// Lifetime calibration counters (written by the background
    /// [`crate::online::Calibrator`]).
    pub fn calibration(&self) -> &CalibrationCounters {
        &self.calibration
    }

    /// A point-in-time snapshot of the calibration subsystem.
    pub fn calibration_stats(&self) -> CalibrationStats {
        CalibrationStats {
            updates: self.calibration.updates.load(Ordering::Relaxed),
            hot_swaps: self.calibration.hot_swaps.load(Ordering::Relaxed),
            calibrations_rolled_back: self.calibration.rolled_back.load(Ordering::Relaxed),
            checkpoints: self.calibration.checkpoints.load(Ordering::Relaxed),
            checkpoint_errors: self.calibration.checkpoint_errors.load(Ordering::Relaxed),
            queue_depth: self.feedback.len(),
            feedback_accepted: self.feedback.accepted(),
            feedback_dropped: self.feedback.dropped(),
        }
    }

    /// Opens a serving session against this engine.
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            scratch: Scratch::new(),
            beam: BeamScratch::new(),
            replay: ReplayBuffer::new(self.config.replay_capacity),
            served: 0,
        }
    }
}

/// One prediction input.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictInput {
    /// Program source in the CLI's C-like surface syntax plus scalar input
    /// bindings; parsed, validated and encoded exactly like the direct data
    /// format (no profiling — this is a prediction, not ground truth).
    Source {
        /// The program text.
        program: String,
        /// `name = value` runtime bindings.
        inputs: Vec<(String, i64)>,
    },
    /// Pre-tokenized model input (predictor models only — baselines
    /// featurize the IR and cannot consume raw tokens).
    Tokens(Vec<u32>),
    /// An already-built sample (e.g. from a dataset or cache).
    Sample(Box<Sample>),
}

/// Calibration feedback for one request item: the profiler's ground truth
/// against the model's earlier prediction, in the metric's natural unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feedback {
    /// Index of the request input the feedback belongs to.
    pub item: usize,
    /// The profiled metric.
    pub metric: Metric,
    /// Ground-truth ("winning") value.
    pub actual: f64,
    /// Model-predicted ("losing") value.
    pub predicted: f64,
}

/// A typed prediction request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictRequest {
    /// Model name; `None` resolves the engine's configured default.
    pub model: Option<String>,
    /// One or more inputs, predicted as a batch.
    pub inputs: Vec<PredictInput>,
    /// Metric subset (response order follows this); `None` means all four.
    pub metrics: Option<Vec<Metric>>,
    /// Beam-width override for digit decoding.
    pub beam_width: Option<usize>,
    /// Worker-thread override for this request.
    pub threads: Option<usize>,
    /// Optional profiler feedback routed into the session's replay buffer
    /// and the engine's shared feedback queue.
    pub feedback: Option<Feedback>,
    /// A/B routing key (e.g. a hash of the wire request id). Only consulted
    /// when `model` is `None` and the engine has a router; absent keys
    /// route as key 0.
    pub route_key: Option<u64>,
}

impl PredictRequest {
    /// Empty request (add inputs with the builder methods).
    pub fn new() -> PredictRequest {
        PredictRequest::default()
    }

    /// Request for one pre-tokenized input.
    pub fn tokens(tokens: Vec<u32>) -> PredictRequest {
        PredictRequest::new().input(PredictInput::Tokens(tokens))
    }

    /// Request for one program source with bindings.
    pub fn source(program: impl Into<String>, inputs: Vec<(String, i64)>) -> PredictRequest {
        PredictRequest::new().input(PredictInput::Source {
            program: program.into(),
            inputs,
        })
    }

    /// Request for one existing sample.
    pub fn sample(sample: Sample) -> PredictRequest {
        PredictRequest::new().input(PredictInput::Sample(Box::new(sample)))
    }

    /// Appends an input.
    #[must_use]
    pub fn input(mut self, input: PredictInput) -> PredictRequest {
        self.inputs.push(input);
        self
    }

    /// Targets a specific registered model.
    #[must_use]
    pub fn for_model(mut self, name: impl Into<String>) -> PredictRequest {
        self.model = Some(name.into());
        self
    }

    /// Restricts the response to a metric subset.
    #[must_use]
    pub fn metrics(mut self, metrics: Vec<Metric>) -> PredictRequest {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the decode beam width.
    #[must_use]
    pub fn beam_width(mut self, width: usize) -> PredictRequest {
        self.beam_width = Some(width);
        self
    }

    /// Overrides the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> PredictRequest {
        self.threads = Some(threads);
        self
    }

    /// Attaches calibration feedback.
    #[must_use]
    pub fn feedback(mut self, feedback: Feedback) -> PredictRequest {
        self.feedback = Some(feedback);
        self
    }

    /// Sets the A/B routing key (see [`PredictRequest::route_key`]).
    #[must_use]
    pub fn route_key(mut self, key: u64) -> PredictRequest {
        self.route_key = Some(key);
        self
    }

    /// A copy of the request with any calibration feedback stripped. The
    /// serve pool uses this when retrying a request singly after a
    /// contained batch panic: `predict_micro_batch` records feedback during
    /// planning (before the fused predict runs), so replaying the original
    /// request would count the triple twice.
    #[must_use]
    pub fn without_feedback(&self) -> PredictRequest {
        PredictRequest {
            feedback: None,
            ..self.clone()
        }
    }
}

/// One metric of one predicted item. Predictor models fill the digit-level
/// fields; baselines report the value alone.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    /// Which metric.
    pub metric: Metric,
    /// Predicted value in the metric's natural unit.
    pub value: f64,
    /// Chosen digits, MSB first (predictor models).
    pub digits: Option<Vec<u8>>,
    /// Final-position confidence (predictor models).
    pub confidence: Option<f32>,
    /// Geometric-mean confidence (predictor models).
    pub mean_confidence: Option<f32>,
}

/// All requested metrics for one input.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemPrediction {
    /// One entry per requested metric, in request order.
    pub metrics: Vec<MetricValue>,
}

impl ItemPrediction {
    /// The value for one metric, when it was requested.
    pub fn value(&self, metric: Metric) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.metric == metric)
            .map(|m| m.value)
    }
}

/// A typed prediction response.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// The resolved model name that served the request.
    pub model: String,
    /// The swap epoch of the model version that served the request —
    /// attributes every answer to an exact registry generation across hot
    /// swaps.
    pub epoch: u64,
    /// One entry per request input, in input order.
    pub items: Vec<ItemPrediction>,
}

/// Per-client serving state: reusable scratch arenas and the calibration
/// replay buffer. Sessions are cheap; open one per connection/worker.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    scratch: Scratch,
    beam: BeamScratch,
    replay: ReplayBuffer,
    served: usize,
}

impl<'e> Session<'e> {
    /// The engine this session serves from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Requests served so far (successful predictions only).
    pub fn served(&self) -> usize {
        self.served
    }

    /// The calibration feedback accumulated by this session, ready for a
    /// [`crate::calibrate::DpoCalibrator`] minibatch.
    pub fn replay_buffer(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// Answers one request.
    ///
    /// Predictor-backed answers are bit-identical to calling
    /// [`NumericPredictor::predict_batch_threads`] /
    /// [`NumericPredictor::predict_tokens_batch_threads`] directly with the
    /// same inputs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownModel`] for an unregistered model,
    /// [`Error::InvalidRequest`] for structural problems (no inputs, empty
    /// metric list, token input to a baseline, feedback out of range) and
    /// [`Error::Ir`] chains for unparseable program source.
    pub fn predict(&mut self, request: &PredictRequest) -> Result<PredictResponse, Error> {
        let engine = self.engine;
        let resolved = engine.resolve_routed(
            request.model.as_deref(),
            request.route_key.unwrap_or_default(),
        )?;
        let metrics = resolve_metrics(request.metrics.as_deref())?;
        if request.inputs.is_empty() {
            return Err(Error::InvalidRequest("request has no inputs".into()));
        }
        let items = match resolved.model.as_predictor() {
            Some(predictor) => {
                let seqs = tokenize_inputs(predictor, &request.inputs)?;
                let beam = resolve_beam_width(predictor, request.beam_width)?;
                let threads = request.threads.unwrap_or(engine.config.threads).max(1);
                if let Some(fb) = request.feedback {
                    self.record_feedback(&resolved.name, &seqs, fb)?;
                }
                let preds = self.predict_seqs(predictor, &seqs, threads, beam);
                preds
                    .iter()
                    .map(|p| item_from_prediction(p, &metrics))
                    .collect()
            }
            None => {
                if request.feedback.is_some() {
                    return Err(Error::InvalidRequest(format!(
                        "calibration feedback requires a predictor model, `{}` is a baseline",
                        resolved.name
                    )));
                }
                let samples = baseline_samples(&request.inputs)?;
                let costs = resolved.model.try_predict_batch(&samples)?;
                costs.iter().map(|c| item_from_cost(c, &metrics)).collect()
            }
        };
        self.served += 1;
        Ok(PredictResponse {
            model: resolved.name,
            epoch: resolved.epoch,
            items,
        })
    }

    /// Answers a queue of requests, micro-batching across them: all inputs
    /// of all requests that resolve to the same predictor model and beam
    /// width are packed into **one**
    /// [`NumericPredictor::predict_tokens_batch_threads`] call (one fused
    /// GEMM per layer per length group), then split back per request.
    /// Requests that fail to resolve or tokenize get their own `Err` slot
    /// without poisoning the batch; baseline-targeted requests fall back to
    /// [`Session::predict`]. Responses keep request order and are exactly
    /// the responses `predict` would have produced one at a time.
    pub fn predict_micro_batch(
        &mut self,
        requests: &[PredictRequest],
    ) -> Vec<Result<PredictResponse, Error>> {
        struct Plan {
            request: usize,
            resolved: Resolved,
            seqs: Vec<Vec<u32>>,
            metrics: Vec<Metric>,
            beam: usize,
            threads: usize,
        }

        let engine = self.engine;
        let mut out: Vec<Option<Result<PredictResponse, Error>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut plans: Vec<Plan> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let plan = (|| -> Result<Option<Plan>, Error> {
                let resolved = engine.resolve_routed(
                    request.model.as_deref(),
                    request.route_key.unwrap_or_default(),
                )?;
                if resolved.model.as_predictor().is_none() {
                    return Ok(None); // baseline: served unfused below
                }
                let metrics = resolve_metrics(request.metrics.as_deref())?;
                if request.inputs.is_empty() {
                    return Err(Error::InvalidRequest("request has no inputs".into()));
                }
                let predictor = resolved
                    .model
                    .as_predictor()
                    .expect("checked to be a predictor above");
                let seqs = tokenize_inputs(predictor, &request.inputs)?;
                // Validate everything before touching session state: a
                // request `predict` would reject must not leave its
                // feedback triple in the replay buffer either.
                let beam = resolve_beam_width(predictor, request.beam_width)?;
                if let Some(fb) = request.feedback {
                    self.record_feedback(&resolved.name, &seqs, fb)?;
                }
                Ok(Some(Plan {
                    request: i,
                    resolved,
                    seqs,
                    metrics,
                    beam,
                    threads: request.threads.unwrap_or(engine.config.threads).max(1),
                }))
            })();
            match plan {
                Ok(Some(p)) => plans.push(p),
                Ok(None) => out[i] = Some(self.predict(&requests[i])),
                Err(e) => out[i] = Some(Err(e)),
            }
        }

        // Fuse plans sharing (model, epoch, beam): one packed batch per
        // group. Keying on the epoch (not just the name) means two plans
        // that straddled a hot swap run on their own resolved versions —
        // every plan holds its model `Arc`, so no re-resolution can miss.
        let mut remaining = plans;
        while !remaining.is_empty() {
            let key = (
                remaining[0].resolved.name.clone(),
                remaining[0].resolved.epoch,
                remaining[0].beam,
            );
            let (mut group, rest): (Vec<Plan>, Vec<Plan>) = remaining.into_iter().partition(|p| {
                (p.resolved.name.as_str(), p.resolved.epoch, p.beam)
                    == (key.0.as_str(), key.1, key.2)
            });
            remaining = rest;
            // Move (not clone) every plan's sequences into the fused batch,
            // remembering each plan's span for the response split.
            let mut all: Vec<Vec<u32>> =
                Vec::with_capacity(group.iter().map(|p| p.seqs.len()).sum());
            let mut counts = Vec::with_capacity(group.len());
            for plan in &mut group {
                counts.push(plan.seqs.len());
                all.append(&mut plan.seqs);
            }
            let threads = group.iter().map(|p| p.threads).max().unwrap_or(1);
            let model = Arc::clone(&group[0].resolved.model);
            let predictor = model
                .as_predictor()
                .expect("only predictor-backed requests are planned");
            let preds = predictor.predict_tokens_batch_threads_width(&all, threads, key.2);
            let mut offset = 0;
            for (plan, count) in group.iter().zip(counts) {
                let slice = &preds[offset..offset + count];
                offset += count;
                out[plan.request] = Some(Ok(PredictResponse {
                    model: plan.resolved.name.clone(),
                    epoch: plan.resolved.epoch,
                    items: slice
                        .iter()
                        .map(|p| item_from_prediction(p, &plan.metrics))
                        .collect(),
                }));
                self.served += 1;
            }
        }

        out.into_iter()
            .map(|slot| slot.expect("every request answered exactly once"))
            .collect()
    }

    /// Predicts token sequences through the fused batch path, or — for a
    /// single sequence on one thread — through the session's scratch arena
    /// (bit-identical, allocation-free in steady state).
    fn predict_seqs(
        &mut self,
        predictor: &NumericPredictor,
        seqs: &[Vec<u32>],
        threads: usize,
        beam: usize,
    ) -> Vec<Prediction> {
        if let [tokens] = seqs {
            let (seq, pooled) = llmulator_nn::forward(
                predictor.encoder(),
                predictor.store(),
                tokens,
                None,
                &mut self.scratch,
            );
            let preds = predictor.decode_pooled_rows_scratch(&pooled, beam, &mut self.beam);
            self.scratch.recycle(seq);
            self.scratch.recycle(pooled);
            preds
        } else {
            predictor.predict_tokens_batch_threads_width(seqs, threads, beam)
        }
    }

    /// Routes a feedback triple into the session replay buffer, the
    /// engine's shared feedback queue (when enabled) and the per-model
    /// scoreboard. Exact predictions carry no preference signal and are
    /// skipped as training data (mirroring
    /// [`crate::calibrate::DpoCalibrator::observe`]) but still count as
    /// accuracy signal on the scoreboard.
    fn record_feedback(
        &mut self,
        model: &str,
        seqs: &[Vec<u32>],
        fb: Feedback,
    ) -> Result<(), Error> {
        let tokens = seqs.get(fb.item).ok_or_else(|| {
            Error::InvalidRequest(format!(
                "feedback.item {} out of range ({} inputs)",
                fb.item,
                seqs.len()
            ))
        })?;
        self.engine
            .scoreboard()
            .record_feedback_error(model, abs_rel_error(fb.actual, fb.predicted));
        let y_w = metric_to_int(fb.metric, fb.actual);
        let y_l = metric_to_int(fb.metric, fb.predicted);
        if y_w != y_l {
            let triple = PreferenceTriple {
                tokens: tokens.clone(),
                metric: fb.metric,
                y_w,
                y_l,
            };
            if self.engine.feedback().is_enabled() {
                self.engine.feedback().push(triple.clone());
            }
            self.replay.push(triple);
        }
        Ok(())
    }
}

/// Hard ceiling on per-request beam widths. Beam memory grows as
/// `width × base` hypotheses per digit position, so an unchecked
/// wire-supplied width (e.g. `beam_width: 1e9` on one JSONL line) would
/// allocate gigabytes mid-decode; widths beyond the full digit lattice
/// carry no extra information anyway.
pub const MAX_BEAM_WIDTH: usize = 256;

/// Resolves a request's beam-width override against [`MAX_BEAM_WIDTH`]
/// (`None` = the model's own width; 0 clamps to 1).
fn resolve_beam_width(
    predictor: &NumericPredictor,
    requested: Option<usize>,
) -> Result<usize, Error> {
    let width = requested.unwrap_or(predictor.beam_width()).max(1);
    if width > MAX_BEAM_WIDTH {
        return Err(Error::InvalidRequest(format!(
            "beam_width {width} exceeds the maximum of {MAX_BEAM_WIDTH}"
        )));
    }
    Ok(width)
}

/// Validates and resolves a metric subset (`None` = all four).
fn resolve_metrics(metrics: Option<&[Metric]>) -> Result<Vec<Metric>, Error> {
    match metrics {
        None => Ok(Metric::all().to_vec()),
        Some([]) => Err(Error::InvalidRequest(
            "metric subset is empty (omit `metrics` for all four)".into(),
        )),
        Some(subset) => Ok(subset.to_vec()),
    }
}

/// Parses and encodes a source input into the same segmented text the
/// direct data format uses (no `<think>` segment, no profiling).
fn source_to_tokens(
    predictor: &NumericPredictor,
    program: &str,
    inputs: &[(String, i64)],
) -> Result<Vec<u32>, Error> {
    let (parsed, data) = parse_source(program, inputs)?;
    let text = SegmentedText::from_program(&parsed, Some(&data), None);
    Ok(text
        .tokenize(predictor.tokenizer(), predictor.config().max_len)
        .tokens)
}

/// Parses + validates program source and builds its input bindings.
fn parse_source(program: &str, inputs: &[(String, i64)]) -> Result<(Program, InputData), Error> {
    let parsed = parse::parse_program(program)
        .map_err(|e| Error::from(e).context("cannot parse program source"))?;
    parsed
        .validate()
        .map_err(|e| Error::from(e).context("program failed validation"))?;
    let mut data = InputData::new();
    for (name, value) in inputs {
        data.bind(name.as_str(), *value);
    }
    Ok((parsed, data))
}

/// Tokenizes every input of a predictor-bound request.
fn tokenize_inputs(
    predictor: &NumericPredictor,
    inputs: &[PredictInput],
) -> Result<Vec<Vec<u32>>, Error> {
    inputs
        .iter()
        .map(|input| match input {
            PredictInput::Tokens(tokens) => Ok(tokens.clone()),
            PredictInput::Source { program, inputs } => {
                source_to_tokens(predictor, program, inputs)
            }
            PredictInput::Sample(sample) => Ok(predictor.tokenize_sample(sample).tokens),
        })
        .collect()
}

/// Builds the samples a baseline model featurizes. Token inputs carry no IR
/// and are rejected; source inputs get a zeroed cost vector (prediction
/// inputs have no ground truth by definition — no baseline reads it).
fn baseline_samples(inputs: &[PredictInput]) -> Result<Vec<Sample>, Error> {
    inputs
        .iter()
        .map(|input| match input {
            PredictInput::Sample(sample) => Ok((**sample).clone()),
            PredictInput::Source { program, inputs } => {
                let (parsed, data) = parse_source(program, inputs)?;
                let text = SegmentedText::from_program(&parsed, Some(&data), None);
                Ok(Sample {
                    text,
                    program: parsed,
                    data,
                    cost: CostVector {
                        power_mw: 0.0,
                        area_um2: 0.0,
                        ff: 0,
                        cycles: 0,
                    },
                })
            }
            PredictInput::Tokens(_) => Err(Error::InvalidRequest(
                "baseline models featurize the IR and cannot consume pre-tokenized input".into(),
            )),
        })
        .collect()
}

/// Projects a full digit-level [`Prediction`] onto the requested metrics.
fn item_from_prediction(pred: &Prediction, metrics: &[Metric]) -> ItemPrediction {
    ItemPrediction {
        metrics: metrics
            .iter()
            .map(|&m| {
                let mp = pred.metric(m);
                MetricValue {
                    metric: m,
                    value: mp.value,
                    digits: Some(mp.digits.clone()),
                    confidence: Some(mp.confidence),
                    mean_confidence: Some(mp.mean_confidence),
                }
            })
            .collect(),
    }
}

/// Projects a baseline cost vector onto the requested metrics.
fn item_from_cost(cost: &CostVector, metrics: &[Metric]) -> ItemPrediction {
    ItemPrediction {
        metrics: metrics
            .iter()
            .map(|&m| MetricValue {
                metric: m,
                value: cost.metric(m),
                digits: None,
                confidence: None,
                mean_confidence: None,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelScale, PredictorConfig};
    use crate::numeric::DigitCodec;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, LValue, Stmt};
    use llmulator_token::NumericMode;

    fn tiny_predictor(seed: u64) -> NumericPredictor {
        NumericPredictor::new(PredictorConfig {
            scale: ModelScale::Small,
            codec: DigitCodec::decimal(4),
            numeric_mode: NumericMode::Digits,
            max_len: 48,
            seed,
        })
    }

    fn program(n: usize) -> Program {
        let op = OperatorBuilder::new("inc")
            .array_param("a", [n])
            .loop_nest(&[("i", n)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
                )]
            })
            .build();
        Program::single_op(op)
    }

    fn sample(n: usize) -> Sample {
        Sample::profile(&program(n), None).expect("profiles")
    }

    fn engine_with_default() -> Engine {
        let engine = EngineConfig::new().threads(2).build();
        engine.register_predictor("default", tiny_predictor(3));
        engine
    }

    /// A baseline that predicts constants (enough to exercise the adapter).
    struct Fixed(f64);

    impl CostModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn predict(&self, _sample: &Sample) -> CostVector {
            CostVector {
                power_mw: self.0,
                area_um2: self.0,
                ff: self.0 as u64,
                cycles: self.0 as u64,
            }
        }
    }

    #[test]
    fn session_predictions_match_the_direct_batch_path_exactly() {
        let engine = engine_with_default();
        let resolved = engine.resolve(None).expect("default registered");
        let predictor = resolved.model.as_predictor().expect("is a predictor");
        let samples: Vec<Sample> = [4usize, 8, 4, 12].iter().map(|&n| sample(n)).collect();
        let oracle = predictor.predict_batch_threads(&samples, 2);

        let mut session = engine.session();
        let mut request = PredictRequest::new();
        for s in &samples {
            request = request.input(PredictInput::Sample(Box::new(s.clone())));
        }
        let response = session.predict(&request).expect("serves");
        assert_eq!(response.model, "default");
        assert_eq!(response.items.len(), samples.len());
        for (item, pred) in response.items.iter().zip(&oracle) {
            for mv in &item.metrics {
                let mp = pred.metric(mv.metric);
                assert!(mv.value.to_bits() == mp.value.to_bits(), "bit-identical");
                assert_eq!(mv.digits.as_deref(), Some(mp.digits.as_slice()));
                assert_eq!(mv.confidence, Some(mp.confidence));
            }
        }
    }

    #[test]
    fn single_input_scratch_path_is_bit_identical_too() {
        let engine = engine_with_default();
        let resolved = engine.resolve(None).expect("default");
        let predictor = resolved.model.as_predictor().expect("predictor");
        let tokens: Vec<u32> = vec![3, 5, 7, 9, 11];
        let oracle = predictor.predict_tokens_batch_threads(std::slice::from_ref(&tokens), 1);
        let mut session = engine.session();
        // Serve the same request repeatedly: the session scratch path must
        // stay exact in steady state, not just on first use.
        for round in 0..3 {
            let response = session
                .predict(&PredictRequest::tokens(tokens.clone()).threads(1))
                .expect("serves");
            let item = &response.items[0];
            for (mv, mp) in item.metrics.iter().zip(&oracle[0].per_metric) {
                assert_eq!(mv.value.to_bits(), mp.value.to_bits(), "round {round}");
                assert_eq!(mv.digits.as_deref(), Some(mp.digits.as_slice()));
            }
        }
        assert_eq!(session.served(), 3);
    }

    #[test]
    fn metric_subset_filters_and_orders_the_response() {
        let engine = engine_with_default();
        let mut session = engine.session();
        let response = session
            .predict(
                &PredictRequest::tokens(vec![1, 2, 3]).metrics(vec![Metric::Cycles, Metric::Power]),
            )
            .expect("serves");
        let got: Vec<Metric> = response.items[0].metrics.iter().map(|m| m.metric).collect();
        assert_eq!(got, vec![Metric::Cycles, Metric::Power]);
        let err = session
            .predict(&PredictRequest::tokens(vec![1]).metrics(vec![]))
            .expect_err("empty subset");
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn unknown_model_and_empty_requests_are_typed_errors() {
        let engine = engine_with_default();
        let mut session = engine.session();
        let err = session
            .predict(&PredictRequest::tokens(vec![1]).for_model("nope"))
            .expect_err("unknown model");
        assert!(matches!(err, Error::UnknownModel { .. }), "{err:?}");
        assert!(err.to_string().contains("default"), "lists roster: {err}");
        let err = session
            .predict(&PredictRequest::new())
            .expect_err("no inputs");
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn source_inputs_parse_and_predict_like_the_equivalent_sample() {
        let engine = engine_with_default();
        let resolved = engine.resolve(None).expect("default");
        let predictor = resolved.model.as_predictor().expect("predictor");
        let text = program(8).render();
        // The direct-format sample for the same program/input pair.
        let s = sample(8);
        let oracle = predictor.predict_batch_threads(std::slice::from_ref(&s), 1);
        let mut session = engine.session();
        let response = session
            .predict(&PredictRequest::source(text, vec![]))
            .expect("parses and serves");
        assert_eq!(
            response.items[0].value(Metric::Cycles),
            Some(oracle[0].metric(Metric::Cycles).value)
        );

        let err = session
            .predict(&PredictRequest::source("void oops(", vec![]))
            .expect_err("syntax error");
        assert!(err.chain().contains("parse"), "{}", err.chain());
    }

    #[test]
    fn baselines_serve_values_without_digit_fields() {
        let engine = EngineConfig::new().default_model("fixed").build();
        engine.register_baseline("fixed", Fixed(7.0));
        let mut session = engine.session();
        let response = session
            .predict(&PredictRequest::sample(sample(4)))
            .expect("serves");
        let mv = &response.items[0].metrics[0];
        assert_eq!(mv.value, 7.0);
        assert!(mv.digits.is_none() && mv.confidence.is_none());
        // Token input to a baseline is a typed error, not a panic.
        let err = session
            .predict(&PredictRequest::tokens(vec![1, 2]))
            .expect_err("tokens need a predictor");
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn feedback_lands_in_the_replay_buffer() {
        let engine = engine_with_default();
        let mut session = engine.session();
        let request = PredictRequest::tokens(vec![2, 4, 6]).feedback(Feedback {
            item: 0,
            metric: Metric::Cycles,
            actual: 120.0,
            predicted: 90.0,
        });
        session.predict(&request).expect("serves");
        assert_eq!(session.replay_buffer().len(), 1);
        // An exact prediction carries no signal.
        let request = PredictRequest::tokens(vec![2, 4, 6]).feedback(Feedback {
            item: 0,
            metric: Metric::Cycles,
            actual: 120.0,
            predicted: 120.0,
        });
        session.predict(&request).expect("serves");
        assert_eq!(session.replay_buffer().len(), 1, "exact match skipped");
        // Out-of-range item is a typed error.
        let request = PredictRequest::tokens(vec![2]).feedback(Feedback {
            item: 5,
            metric: Metric::Cycles,
            actual: 1.0,
            predicted: 2.0,
        });
        assert!(matches!(
            session.predict(&request),
            Err(Error::InvalidRequest(_))
        ));
    }

    #[test]
    fn micro_batch_fuses_across_requests_and_isolates_errors() {
        let engine = EngineConfig::new().threads(2).build();
        engine.register_predictor("default", tiny_predictor(3));
        engine.register_baseline("fixed", Fixed(3.0));
        let resolved = engine.resolve(None).expect("default");
        let predictor = resolved.model.as_predictor().expect("predictor");

        let requests = vec![
            PredictRequest::tokens(vec![1, 2, 3]),
            PredictRequest::tokens(vec![9]).for_model("nope"),
            PredictRequest::sample(sample(4)).for_model("fixed"),
            PredictRequest::new()
                .input(PredictInput::Tokens(vec![4, 5]))
                .input(PredictInput::Tokens(vec![6, 7, 8, 9])),
        ];
        let mut session = engine.session();
        let results = session.predict_micro_batch(&requests);
        assert_eq!(results.len(), 4);
        // Request 0 and 3 were fused into one batch; answers must equal the
        // unfused oracle exactly.
        let oracle = predictor
            .predict_tokens_batch_threads(&[vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9]], 2);
        let r0 = results[0].as_ref().expect("served");
        assert_eq!(
            r0.items[0].value(Metric::Cycles),
            Some(oracle[0].metric(Metric::Cycles).value)
        );
        let r3 = results[3].as_ref().expect("served");
        assert_eq!(r3.items.len(), 2);
        assert_eq!(
            r3.items[1].value(Metric::Power),
            Some(oracle[2].metric(Metric::Power).value)
        );
        assert!(matches!(results[1], Err(Error::UnknownModel { .. })));
        let r2 = results[2].as_ref().expect("baseline served");
        assert_eq!(r2.model, "fixed");
        assert_eq!(r2.items[0].value(Metric::Power), Some(3.0));
    }

    #[test]
    fn registry_replaces_on_reregistration_and_loads_from_disk() {
        let engine = EngineConfig::new().build();
        engine.register_predictor("m", tiny_predictor(1));
        engine.register_predictor("m", tiny_predictor(2));
        assert_eq!(engine.model_names(), vec!["m"]);

        let dir = std::env::temp_dir().join(format!(
            "llmulator_engine_test_{}_{}",
            std::process::id(),
            line!()
        ));
        let path = dir.join("model.json");
        tiny_predictor(9).save(&path).expect("saves");
        engine.load_predictor("disk", &path).expect("loads");
        assert!(engine.has_model("disk"));
        let err = engine
            .load_predictor("gone", dir.join("missing.json"))
            .expect_err("missing file");
        assert!(err.chain().contains("cannot load model"), "{}", err.chain());
        assert!(err.chain().contains("caused by"), "{}", err.chain());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn beam_width_override_keeps_the_decoded_value() {
        let engine = engine_with_default();
        let mut session = engine.session();
        let base = session
            .predict(&PredictRequest::tokens(vec![5, 6, 7]))
            .expect("serves");
        let wide = session
            .predict(&PredictRequest::tokens(vec![5, 6, 7]).beam_width(8))
            .expect("serves");
        assert_eq!(
            base.items[0].value(Metric::Cycles),
            wide.items[0].value(Metric::Cycles),
            "best hypothesis is width-invariant"
        );
        // Width 0 clamps instead of panicking.
        session
            .predict(&PredictRequest::tokens(vec![5]).beam_width(0))
            .expect("clamped");
        // A wire-scale width is rejected up front, not allocated.
        let err = session
            .predict(&PredictRequest::tokens(vec![5]).beam_width(1_000_000_000))
            .expect_err("capped");
        assert!(matches!(err, Error::InvalidRequest(_)), "{err:?}");
        assert!(err.to_string().contains(&MAX_BEAM_WIDTH.to_string()));
        // The micro-batch path enforces the same cap per request.
        let results = session.predict_micro_batch(&[
            PredictRequest::tokens(vec![5]),
            PredictRequest::tokens(vec![5]).beam_width(usize::MAX),
        ]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(Error::InvalidRequest(_))));
    }

    #[test]
    fn hot_swap_bumps_the_epoch_and_in_flight_resolutions_keep_their_version() {
        let engine = engine_with_default();
        let first = engine.resolve(None).expect("resolves");
        assert_eq!(first.epoch, 1, "first registration is epoch 1");
        // Hot-swap a different model under the same name.
        engine.register_predictor("default", tiny_predictor(99));
        let second = engine.resolve(None).expect("resolves");
        assert_eq!(second.epoch, 2, "swap bumped the epoch");
        assert_eq!(engine.swap_epoch(), 2);
        // The pre-swap resolution still serves the old version.
        let tokens: Vec<u32> = vec![4, 5, 6];
        let old = first
            .model
            .as_predictor()
            .expect("predictor")
            .predict_tokens(&tokens, None);
        let oracle = tiny_predictor(3).predict_tokens(&tokens, None);
        assert_eq!(
            old.metric(Metric::Cycles).value.to_bits(),
            oracle.metric(Metric::Cycles).value.to_bits(),
            "in-flight Arc pins the pre-swap weights"
        );
        // Responses carry the epoch of the version that served them.
        let mut session = engine.session();
        let response = session
            .predict(&PredictRequest::tokens(tokens))
            .expect("serves");
        assert_eq!(response.epoch, 2);
    }

    #[test]
    fn router_splits_unnamed_requests_and_explicit_model_bypasses_it() {
        use crate::online::AbRouter;
        let engine = engine_with_default();
        engine.register_predictor("calibrated", tiny_predictor(7));
        engine
            .set_router(Some(
                AbRouter::new(vec![("default".into(), 1), ("calibrated".into(), 1)])
                    .expect("valid"),
            ))
            .expect("variants registered");
        let mut session = engine.session();
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..32u64 {
            let r = session
                .predict(&PredictRequest::tokens(vec![1, 2, 3]).route_key(key))
                .expect("serves");
            seen.insert(r.model.clone());
            // Same key re-routes identically.
            let again = session
                .predict(&PredictRequest::tokens(vec![1, 2, 3]).route_key(key))
                .expect("serves");
            assert_eq!(again.model, r.model, "sticky routing for key {key}");
        }
        assert_eq!(seen.len(), 2, "both variants get traffic: {seen:?}");
        // Naming a model bypasses the router entirely.
        let r = session
            .predict(
                &PredictRequest::tokens(vec![1, 2, 3])
                    .for_model("default")
                    .route_key(5),
            )
            .expect("serves");
        assert_eq!(r.model, "default");
        // A router over an unregistered variant is rejected up front.
        let err = engine
            .set_router(Some(
                AbRouter::new(vec![("ghost".into(), 1)]).expect("structurally valid"),
            ))
            .expect_err("unknown variant");
        assert!(matches!(err, Error::UnknownModel { .. }));
    }

    #[test]
    fn feedback_fans_out_to_the_shared_queue_and_scoreboard() {
        let engine = EngineConfig::new().threads(1).feedback_capacity(4).build();
        engine.register_predictor("default", tiny_predictor(3));
        let mut session = engine.session();
        let request = PredictRequest::tokens(vec![2, 4, 6]).feedback(Feedback {
            item: 0,
            metric: Metric::Cycles,
            actual: 120.0,
            predicted: 90.0,
        });
        session.predict(&request).expect("serves");
        assert_eq!(session.replay_buffer().len(), 1);
        assert_eq!(engine.feedback().accepted(), 1, "queue got the triple");
        let (err, n) = engine
            .scoreboard()
            .rolling_error("default")
            .expect("scored");
        assert_eq!(n, 1);
        assert!((err - 0.25).abs() < 1e-12, "|120-90|/120: {err}");
        // Exact predictions feed the scoreboard but not the queue.
        let request = PredictRequest::tokens(vec![2, 4, 6]).feedback(Feedback {
            item: 0,
            metric: Metric::Cycles,
            actual: 120.0,
            predicted: 120.0,
        });
        session.predict(&request).expect("serves");
        assert_eq!(engine.feedback().accepted(), 1, "no training signal");
        let (_, n) = engine
            .scoreboard()
            .rolling_error("default")
            .expect("scored");
        assert_eq!(n, 2, "accuracy signal recorded");
    }

    #[test]
    fn engine_is_sync_and_supports_concurrent_sessions() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Engine>();
        let engine = engine_with_default();
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let engine = &engine;
                    scope.spawn(move || {
                        let mut session = engine.session();
                        let r = session
                            .predict(&PredictRequest::tokens(vec![i, i + 1]))
                            .expect("serves");
                        r.items[0].value(Metric::Cycles).expect("cycles")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        assert_eq!(results.len(), 3);
    }
}
