//! Dynamic control-flow separation (paper Sec. 5.2) as attention masks.
//!
//! Operators are classified by the static analysis into Class I
//! (input-independent control flow) and Class II (input-dependent). Class I
//! operator tokens have no useful interaction with the `data` segment, so the
//! mask conceals those blocks; optionally, mutually independent operators are
//! decoupled from each other (the paper's Fig. 6 attention pattern), which is
//! what makes block caching effective during iterative design exploration.

use llmulator_ir::OperatorClass;
use llmulator_nn::Matrix;
use llmulator_token::{SegmentKind, TokenizedProgram};

/// Additive mask value for blocked pairs.
pub const BLOCKED: f32 = -1e9;

/// Options controlling mask construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskOptions {
    /// Conceal Class I operator ↔ `data` interactions.
    pub separate_class_i_from_data: bool,
    /// Decouple distinct operator segments from each other (the Fig. 6
    /// `Op0 × Op1 = 0` pattern for independent operators).
    pub decouple_operators: bool,
}

impl Default for MaskOptions {
    fn default() -> Self {
        MaskOptions {
            separate_class_i_from_data: true,
            decouple_operators: false,
        }
    }
}

/// Builds the additive `n × n` separation mask for a tokenized program.
///
/// `classes[i]` is the classification of operator `i`; operators without a
/// classification are treated as Class II (conservative — they keep their
/// data attention).
pub fn separation_mask(
    tp: &TokenizedProgram,
    classes: &[OperatorClass],
    options: MaskOptions,
) -> Matrix {
    let n = tp.tokens.len();
    // Per-token segment tags: None = structural (BOS/EOS) attends everything.
    let mut tag: Vec<Option<SegmentKind>> = vec![None; n];
    for seg in &tp.segments {
        for slot in tag.iter_mut().take(seg.end.min(n)).skip(seg.start) {
            *slot = Some(seg.kind);
        }
    }
    let class_of =
        |op: usize| -> OperatorClass { classes.get(op).copied().unwrap_or(OperatorClass::ClassII) };
    Matrix::from_fn(n, n, |i, j| {
        let (Some(a), Some(b)) = (tag[i], tag[j]) else {
            return 0.0;
        };
        let blocked = match (a, b) {
            (SegmentKind::Operator(op), SegmentKind::Data)
            | (SegmentKind::Data, SegmentKind::Operator(op)) => {
                options.separate_class_i_from_data && class_of(op) == OperatorClass::ClassI
            }
            (SegmentKind::Operator(x), SegmentKind::Operator(y)) => {
                options.decouple_operators && x != y
            }
            _ => false,
        };
        if blocked {
            BLOCKED
        } else {
            0.0
        }
    })
}

/// Counts attended (non-blocked) entries — used to report mask sparsity.
pub fn attended_fraction(mask: &Matrix) -> f64 {
    let total = (mask.rows() * mask.cols()).max(1);
    let open = mask.data().iter().filter(|&&v| v > BLOCKED / 2.0).count();
    open as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_token::Segment;

    fn tokenized() -> TokenizedProgram {
        TokenizedProgram {
            tokens: (0..10).collect(),
            segments: vec![
                Segment {
                    kind: SegmentKind::Graph,
                    start: 1,
                    end: 3,
                },
                Segment {
                    kind: SegmentKind::Operator(0),
                    start: 3,
                    end: 5,
                },
                Segment {
                    kind: SegmentKind::Operator(1),
                    start: 5,
                    end: 7,
                },
                Segment {
                    kind: SegmentKind::Data,
                    start: 7,
                    end: 9,
                },
            ],
        }
    }

    #[test]
    fn class_i_operator_is_masked_from_data() {
        let tp = tokenized();
        let mask = separation_mask(
            &tp,
            &[OperatorClass::ClassI, OperatorClass::ClassII],
            MaskOptions::default(),
        );
        // Op0 (Class I) rows 3-4 × Data cols 7-8 blocked, both directions.
        assert!(mask.get(3, 7) <= BLOCKED);
        assert!(mask.get(8, 4) <= BLOCKED);
        // Op1 (Class II) keeps data attention.
        assert!(mask.get(5, 7) == 0.0);
        // Graph attends everything.
        assert!(mask.get(1, 7) == 0.0);
    }

    #[test]
    fn unknown_class_defaults_to_class_ii() {
        let tp = tokenized();
        let mask = separation_mask(&tp, &[], MaskOptions::default());
        assert!(mask.get(3, 7) == 0.0, "conservative: keep attention");
    }

    #[test]
    fn operator_decoupling_blocks_cross_op_blocks() {
        let tp = tokenized();
        let mask = separation_mask(
            &tp,
            &[OperatorClass::ClassII, OperatorClass::ClassII],
            MaskOptions {
                separate_class_i_from_data: true,
                decouple_operators: true,
            },
        );
        assert!(mask.get(3, 5) <= BLOCKED, "Op0×Op1 blocked");
        assert!(mask.get(3, 4) == 0.0, "within-op attention kept");
        assert!(mask.get(3, 1) == 0.0, "op×graph kept");
    }

    #[test]
    fn structural_tokens_attend_everything() {
        let tp = tokenized();
        let mask = separation_mask(
            &tp,
            &[OperatorClass::ClassI],
            MaskOptions {
                separate_class_i_from_data: true,
                decouple_operators: true,
            },
        );
        for j in 0..10 {
            assert_eq!(mask.get(0, j), 0.0, "BOS row open at {j}");
            assert_eq!(mask.get(9, j), 0.0, "EOS row open at {j}");
        }
    }

    #[test]
    fn attended_fraction_reflects_blocking() {
        let tp = tokenized();
        let open = separation_mask(&tp, &[], MaskOptions::default());
        assert!((attended_fraction(&open) - 1.0).abs() < 1e-9);
        let masked = separation_mask(
            &tp,
            &[OperatorClass::ClassI, OperatorClass::ClassI],
            MaskOptions::default(),
        );
        assert!(attended_fraction(&masked) < 1.0);
    }
}
