//! Output numerical modeling (paper Sec. 4.2).
//!
//! Continuous targets are decomposed into progressive digit-wise
//! classification tasks: a value is encoded MSB-first in base `D` with fixed
//! width `L`, each position predicted as an independent `D`-way
//! classification. Per-position probability distributions give explicit
//! confidence, and beam search over the digit lattice recovers from
//! high-order-digit errors.
//!
//! The base trade-off the paper analyzes — encoding length
//! `L = ceil(log_D N)` versus per-digit complexity `D` — is captured by
//! [`DigitCodec::encoding_length`].

use llmulator_sim::Metric;
use serde::{Deserialize, Serialize};

/// Fixed-width positional codec for prediction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigitCodec {
    /// Radix `D` (the paper defaults to decimal).
    pub base: u32,
    /// Number of digit positions `L` (MSB first, leading zeros included).
    pub width: usize,
}

impl DigitCodec {
    /// Decimal codec with the given width.
    pub fn decimal(width: usize) -> DigitCodec {
        DigitCodec { base: 10, width }
    }

    /// The default codec used throughout the reproduction: base 10, width 8
    /// (covers values up to 10^8 − 1).
    pub fn standard() -> DigitCodec {
        DigitCodec::decimal(8)
    }

    /// Largest encodable value.
    pub fn max_value(&self) -> u64 {
        (self.base as u64).pow(self.width as u32) - 1
    }

    /// Encodes a value MSB-first, saturating at [`DigitCodec::max_value`].
    pub fn encode(&self, value: u64) -> Vec<u8> {
        let mut v = value.min(self.max_value());
        let mut digits = vec![0u8; self.width];
        for slot in digits.iter_mut().rev() {
            *slot = (v % self.base as u64) as u8;
            v /= self.base as u64;
        }
        digits
    }

    /// Decodes MSB-first digits back into a value.
    ///
    /// # Panics
    ///
    /// Panics if a digit is out of range for the base.
    pub fn decode(&self, digits: &[u8]) -> u64 {
        let mut v: u64 = 0;
        for &d in digits {
            assert!(
                (d as u32) < self.base,
                "digit {d} out of base {}",
                self.base
            );
            v = v * self.base as u64 + d as u64;
        }
        v
    }

    /// Minimal encoding length for `value` in this base
    /// (`L = ceil(log_D N)`; 1 for zero).
    pub fn encoding_length(&self, value: u64) -> usize {
        if value == 0 {
            return 1;
        }
        let mut len = 0;
        let mut v = value;
        while v > 0 {
            v /= self.base as u64;
            len += 1;
        }
        len
    }
}

/// Per-position probability distributions over digit classes, MSB first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigitDistribution {
    base: u32,
    /// `width` rows of `base` probabilities each.
    probs: Vec<Vec<f32>>,
}

impl DigitDistribution {
    /// Wraps per-position probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `base`.
    pub fn new(base: u32, probs: Vec<Vec<f32>>) -> DigitDistribution {
        for row in &probs {
            assert_eq!(row.len(), base as usize, "one probability per class");
        }
        DigitDistribution { base, probs }
    }

    /// Number of digit positions.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Probability row for one position (MSB first).
    pub fn position(&self, j: usize) -> &[f32] {
        &self.probs[j]
    }

    /// Greedy (argmax) digits.
    ///
    /// Uses [`f32::total_cmp`] so non-finite probabilities (NaN logits from
    /// a degenerate forward pass) degrade to a deterministic argmax instead
    /// of panicking mid-eval.
    pub fn greedy(&self) -> Vec<u8> {
        self.probs
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-position confidence: the probability of the chosen digit.
    pub fn confidences(&self, digits: &[u8]) -> Vec<f32> {
        digits
            .iter()
            .enumerate()
            .map(|(j, &d)| self.probs[j][d as usize])
            .collect()
    }

    /// Scalar confidence: the final-position (LSB) logit probability, the
    /// quantity the paper reports for its confidence/MSE correlation
    /// (Table 6) "due to its relevance in causal inference".
    ///
    /// Returns `0.0` for an empty digit string (there is no last position
    /// to read; the previous implementation indexed `digits[0]` and
    /// panicked).
    pub fn final_confidence(&self, digits: &[u8]) -> f32 {
        match digits.split_last() {
            None => 0.0,
            Some((&last_digit, rest)) => self
                .probs
                .get(rest.len())
                .and_then(|row| row.get(last_digit as usize))
                .copied()
                .unwrap_or(0.0),
        }
    }

    /// Geometric-mean confidence across positions.
    pub fn mean_confidence(&self, digits: &[u8]) -> f32 {
        let c = self.confidences(digits);
        if c.is_empty() {
            return 0.0;
        }
        let log_sum: f32 = c.iter().map(|p| p.max(1e-9).ln()).sum();
        (log_sum / c.len() as f32).exp()
    }
}

/// One beam-search hypothesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamHypothesis {
    /// Digit string, MSB first.
    pub digits: Vec<u8>,
    /// Sum of per-position log probabilities.
    pub log_prob: f32,
}

/// Beam search over the digit lattice (paper's error-control mechanism):
/// returns the top-`k` digit strings by joint probability, best first.
///
/// With independent per-position heads the best hypothesis equals the greedy
/// decode; lower-ranked hypotheses expose where a high-order digit is
/// uncertain and allow rectification by downstream scoring.
pub fn beam_search(dist: &DigitDistribution, k: usize) -> Vec<BeamHypothesis> {
    let k = k.max(1);
    let mut beams = vec![BeamHypothesis {
        digits: Vec::new(),
        log_prob: 0.0,
    }];
    for j in 0..dist.width() {
        let row = dist.position(j);
        let mut next = Vec::with_capacity(beams.len() * row.len());
        for beam in &beams {
            for (d, &p) in row.iter().enumerate() {
                let mut digits = beam.digits.clone();
                digits.push(d as u8);
                next.push(BeamHypothesis {
                    digits,
                    log_prob: beam.log_prob + p.max(1e-9).ln(),
                });
            }
        }
        // `total_cmp` keeps the sort total when NaN log-probs leak in from
        // degenerate logits (NaN orders above +inf, so poisoned hypotheses
        // sort first deterministically instead of panicking the eval).
        next.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        next.truncate(k);
        beams = next;
    }
    beams
}

/// Reusable buffers for repeated beam searches: the batched decode path
/// runs one search per metric per sample, and [`beam_search`]'s per-position
/// hypothesis churn (hundreds of short-lived `Vec<u8>` allocations per
/// search) dominates short-sequence decode. Holding the frontier buffers
/// here keeps their allocations alive across searches.
#[derive(Debug, Default)]
pub struct BeamScratch {
    beams: Vec<BeamHypothesis>,
    next: Vec<BeamHypothesis>,
}

impl BeamScratch {
    /// Empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> BeamScratch {
        BeamScratch::default()
    }
}

/// [`beam_search`] with caller-owned scratch buffers: identical expansion,
/// ranking (stable sort by [`f32::total_cmp`]), and truncation order, so the
/// returned hypotheses are exactly equal to [`beam_search`]'s — only the
/// intermediate allocations are recycled across calls.
pub fn beam_search_with(
    dist: &DigitDistribution,
    k: usize,
    scratch: &mut BeamScratch,
) -> Vec<BeamHypothesis> {
    let k = k.max(1);
    // Frontier starts as the single empty hypothesis.
    scratch.beams.clear();
    scratch.beams.push(BeamHypothesis {
        digits: Vec::new(),
        log_prob: 0.0,
    });
    for j in 0..dist.width() {
        let row = dist.position(j);
        // Expand into `next`, reusing its hypotheses' digit buffers.
        let wanted = scratch.beams.len() * row.len();
        scratch.next.truncate(wanted);
        while scratch.next.len() < wanted {
            scratch.next.push(BeamHypothesis {
                digits: Vec::new(),
                log_prob: 0.0,
            });
        }
        let mut slot = scratch.next.iter_mut();
        for beam in &scratch.beams {
            for (d, &p) in row.iter().enumerate() {
                let hyp = slot.next().expect("sized above");
                hyp.digits.clear();
                hyp.digits.extend_from_slice(&beam.digits);
                hyp.digits.push(d as u8);
                hyp.log_prob = beam.log_prob + p.max(1e-9).ln();
            }
        }
        scratch
            .next
            .sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        // Swap the top-k into the frontier element-wise: the frontier's old
        // digit buffers land back in `next`'s slots, so no allocation is
        // ever dropped.
        let keep = k.min(scratch.next.len());
        while scratch.beams.len() < keep {
            scratch.beams.push(BeamHypothesis {
                digits: Vec::new(),
                log_prob: 0.0,
            });
        }
        scratch.beams.truncate(keep);
        for (beam, top) in scratch.beams.iter_mut().zip(scratch.next.iter_mut()) {
            std::mem::swap(beam, top);
        }
    }
    scratch.beams.clone()
}

/// Converts a metric's continuous ground truth into the integer domain the
/// digit codec operates on (power is predicted in centi-milliwatts so the
/// fractional part survives; the other metrics are naturally integral).
pub fn metric_to_int(metric: Metric, value: f64) -> u64 {
    let v = match metric {
        Metric::Power => value * 100.0,
        Metric::Area | Metric::FlipFlops | Metric::Cycles => value,
    };
    v.max(0.0).round() as u64
}

/// Inverse of [`metric_to_int`].
pub fn int_to_metric(metric: Metric, value: u64) -> f64 {
    match metric {
        Metric::Power => value as f64 / 100.0,
        Metric::Area | Metric::FlipFlops | Metric::Cycles => value as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let codec = DigitCodec::standard();
        for v in [0u64, 1, 9, 10, 655, 99_999_999] {
            assert_eq!(codec.decode(&codec.encode(v)), v, "value {v}");
        }
    }

    #[test]
    fn encode_saturates_at_max() {
        let codec = DigitCodec::decimal(3);
        assert_eq!(codec.encode(5_000), vec![9, 9, 9]);
        assert_eq!(codec.max_value(), 999);
    }

    #[test]
    fn paper_example_655_msb_first() {
        let codec = DigitCodec::decimal(3);
        assert_eq!(codec.encode(655), vec![6, 5, 5]);
    }

    #[test]
    fn binary_base_matches_paper_length_analysis() {
        // Paper: N = 128 → decimal L = 3, binary L = 8 when width fixed;
        // minimal lengths are 3 and 8 respectively.
        let dec = DigitCodec::decimal(3);
        assert_eq!(dec.encoding_length(128), 3);
        let bin = DigitCodec { base: 2, width: 8 };
        assert_eq!(bin.encoding_length(128), 8);
        assert_eq!(bin.encode(128), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn greedy_takes_argmax_per_position() {
        let dist =
            DigitDistribution::new(10, vec![one_hot(6, 0.8), one_hot(5, 0.9), one_hot(5, 0.7)]);
        assert_eq!(dist.greedy(), vec![6, 5, 5]);
        let conf = dist.confidences(&[6, 5, 5]);
        assert!((conf[0] - 0.8).abs() < 1e-5);
    }

    #[test]
    fn beam_search_top1_is_greedy() {
        let dist = DigitDistribution::new(10, vec![one_hot(7, 0.5), one_hot(2, 0.6)]);
        let beams = beam_search(&dist, 4);
        assert_eq!(beams[0].digits, dist.greedy());
        assert!(beams.windows(2).all(|w| w[0].log_prob >= w[1].log_prob));
    }

    #[test]
    fn beam_search_exposes_bimodal_uncertainty() {
        // Paper Fig. 2: "4:0.8, 1:0.6" style bimodal MSB — the runner-up
        // hypothesis flips the uncertain high-order digit.
        let mut msb = vec![0.01f32; 10];
        msb[4] = 0.5;
        msb[1] = 0.4;
        let dist = DigitDistribution::new(10, vec![msb, one_hot(6, 0.95)]);
        let beams = beam_search(&dist, 2);
        assert_eq!(beams[0].digits, vec![4, 6]);
        assert_eq!(beams[1].digits, vec![1, 6]);
    }

    #[test]
    fn final_confidence_reads_lsb() {
        let dist = DigitDistribution::new(10, vec![one_hot(1, 0.9), one_hot(2, 0.4)]);
        let d = dist.greedy();
        assert!((dist.final_confidence(&d) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn final_confidence_empty_digits_is_zero() {
        // Regression: indexed `digits[0]` on an empty slice and panicked.
        let dist = DigitDistribution::new(10, vec![one_hot(1, 0.9)]);
        assert_eq!(dist.final_confidence(&[]), 0.0);
        let empty = DigitDistribution::new(10, Vec::new());
        assert_eq!(empty.final_confidence(&[]), 0.0);
        assert_eq!(empty.mean_confidence(&[]), 0.0);
    }

    #[test]
    fn nan_logits_decode_gracefully() {
        // Regression: `partial_cmp(..).expect("finite")` panicked the whole
        // eval when a degenerate forward pass produced NaN probabilities.
        let mut poisoned = vec![0.1f32; 10];
        poisoned[3] = f32::NAN;
        let dist = DigitDistribution::new(10, vec![poisoned, vec![f32::NAN; 10], one_hot(4, 0.9)]);
        let digits = dist.greedy();
        assert_eq!(digits.len(), 3);
        assert!(digits.iter().all(|&d| (d as u32) < 10), "digits in base");
        assert_eq!(digits[2], 4, "healthy positions still decode by argmax");
        let beams = beam_search(&dist, 4);
        assert_eq!(beams.len(), 4);
        for hyp in &beams {
            assert_eq!(hyp.digits.len(), 3);
            assert!(hyp.digits.iter().all(|&d| (d as u32) < 10));
        }
        // Confidence accessors stay total too.
        let _ = dist.final_confidence(&digits);
        let _ = dist.mean_confidence(&digits);
    }

    #[test]
    fn mean_confidence_is_geometric() {
        let dist = DigitDistribution::new(10, vec![one_hot(0, 0.25), one_hot(0, 1.0)]);
        let m = dist.mean_confidence(&[0, 0]);
        assert!((m - 0.5).abs() < 1e-3);
    }

    #[test]
    fn beam_search_with_scratch_is_exactly_equal() {
        // The scratch-backed search must return hypotheses exactly equal to
        // the allocating one (same digits, same log-prob bits), including
        // when the scratch is reused across differently shaped searches.
        let mut scratch = BeamScratch::new();
        let dists = [
            DigitDistribution::new(10, vec![one_hot(6, 0.8), one_hot(5, 0.9), one_hot(5, 0.7)]),
            DigitDistribution::new(10, vec![one_hot(0, 0.4); 5]),
            DigitDistribution::new(10, vec![vec![0.1; 10]; 2]),
            DigitDistribution::new(10, Vec::new()),
            DigitDistribution::new(10, vec![vec![f32::NAN; 10], one_hot(3, 0.6)]),
        ];
        for dist in &dists {
            for k in [1usize, 2, 4, 7] {
                assert_eq!(
                    beam_search_with(dist, k, &mut scratch),
                    beam_search(dist, k),
                    "k={k} width={}",
                    dist.width()
                );
            }
        }
    }

    #[test]
    fn metric_scaling_round_trips_power() {
        let p = 12.34f64;
        let i = metric_to_int(Metric::Power, p);
        assert!((int_to_metric(Metric::Power, i) - p).abs() < 0.005);
        assert_eq!(metric_to_int(Metric::Cycles, 1000.0), 1000);
    }

    fn one_hot(idx: usize, p: f32) -> Vec<f32> {
        let rest = (1.0 - p) / 9.0;
        (0..10).map(|i| if i == idx { p } else { rest }).collect()
    }
}
