//! Training samples and the common cost-model interface.

use crate::encode::SegmentedText;
use llmulator_ir::{InputData, Program};
use llmulator_sim::{CostVector, Metric};
use serde::{Deserialize, Serialize};

/// One labelled training/evaluation sample: segmented input text, the source
/// program/input pair (baselines featurize the IR directly), and the
/// profiled ground-truth cost vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Model input text, segment-labelled.
    pub text: SegmentedText,
    /// The source program (graph + operators + hardware parameters).
    pub program: Program,
    /// The runtime inputs the sample was profiled with.
    pub data: InputData,
    /// Ground-truth `<Power, Area, FF, Cycles>`.
    pub cost: CostVector,
}

impl Sample {
    /// Profiles a program/input pair into a sample (direct data format).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn profile(
        program: &Program,
        data: Option<&InputData>,
    ) -> Result<Sample, llmulator_sim::SimError> {
        let d = data.cloned().unwrap_or_default();
        let profile = llmulator_sim::profile(program, &d)?;
        Ok(Sample::from_profile(program, data, &profile, false))
    }

    /// Profiles with the reasoning (`<think>`) data format: RTL features are
    /// embedded as an extra segment (paper Sec. 6.2).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn profile_reasoning(
        program: &Program,
        data: Option<&InputData>,
    ) -> Result<Sample, llmulator_sim::SimError> {
        let d = data.cloned().unwrap_or_default();
        let profile = llmulator_sim::profile(program, &d)?;
        Ok(Sample::from_profile(program, data, &profile, true))
    }

    /// Builds a sample from an already-computed ground-truth profile — the
    /// path the [`crate::cache::DatasetCache`] uses so cached profiles never
    /// re-run the simulator. `with_think` selects the reasoning data format
    /// (RTL features embedded as a `<think>` segment).
    pub fn from_profile(
        program: &Program,
        data: Option<&InputData>,
        profile: &llmulator_sim::Profile,
        with_think: bool,
    ) -> Sample {
        Sample {
            text: SegmentedText::from_program(
                program,
                data,
                with_think.then_some(&profile.features),
            ),
            program: program.clone(),
            data: data.cloned().unwrap_or_default(),
            cost: profile.cost,
        }
    }
}

/// A labelled dataset with deterministic train/validation splitting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// All samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Merges another dataset in.
    pub fn extend(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// Deterministic split: every `k`-th sample goes to validation.
    ///
    /// `k` is clamped to a minimum of 2 — `split(0)` and `split(1)` behave
    /// exactly like `split(2)` (alternating train/validation) rather than
    /// producing an empty side. Train and validation always partition the
    /// input: every sample lands in exactly one of them, in original order.
    pub fn split(&self, k: usize) -> (Dataset, Dataset) {
        let k = k.max(2);
        let mut train = Dataset::new();
        let mut val = Dataset::new();
        for (i, s) in self.samples.iter().enumerate() {
            if i % k == k - 1 {
                val.push(s.clone());
            } else {
                train.push(s.clone());
            }
        }
        (train, val)
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

/// The interface every cost model in the evaluation implements (LLMulator
/// and the TLP / GNNHLS / Tenset-MLP / Timeloop baselines).
pub trait CostModel {
    /// Human-readable model name for tables.
    fn name(&self) -> &str;

    /// Predicts all four metrics for a sample's input text.
    fn predict(&self, sample: &Sample) -> CostVector;

    /// Predicts one metric (default: reads it from the full vector).
    fn predict_metric(&self, sample: &Sample, metric: Metric) -> f64 {
        self.predict(sample).metric(metric)
    }

    /// Predicts a whole evaluation set, preserving input order.
    ///
    /// The default is a serial loop; models whose state is `Sync` override
    /// this to fan predictions out across threads, which is what the
    /// experiment harness calls so suite regeneration scales with cores.
    fn predict_batch(&self, samples: &[Sample]) -> Vec<CostVector> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Fallible batch prediction — the entry point the serving engine calls.
    ///
    /// The models in this workspace are total functions of the sample text
    /// and never fail once constructed, so the default wraps
    /// [`CostModel::predict_batch`] in `Ok`. Implementations backed by
    /// external processes or remote state override this to surface their
    /// failures as typed [`crate::Error`]s instead of panicking.
    fn try_predict_batch(&self, samples: &[Sample]) -> Result<Vec<CostVector>, crate::Error> {
        Ok(self.predict_batch(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, LValue, Stmt};
    use llmulator_token::SegmentKind;

    fn program() -> Program {
        let op = OperatorBuilder::new("inc")
            .array_param("a", [8])
            .loop_nest(&[("i", 8)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn profile_produces_direct_format() {
        let s = Sample::profile(&program(), None).expect("profiles");
        assert!(s.cost.cycles > 0);
        assert!(!s.text.parts.iter().any(|(k, _)| *k == SegmentKind::Think));
    }

    #[test]
    fn profile_reasoning_adds_think_segment() {
        let s = Sample::profile_reasoning(&program(), None).expect("profiles");
        assert!(s.text.parts.iter().any(|(k, _)| *k == SegmentKind::Think));
    }

    #[test]
    fn split_clamps_small_k_to_two() {
        let s = Sample::profile(&program(), None).expect("profiles");
        let ds: Dataset = std::iter::repeat_n(s, 6).collect();
        let (t2, v2) = ds.split(2);
        for k in [0, 1] {
            let (train, val) = ds.split(k);
            assert_eq!(train, t2, "split({k}) must behave like split(2)");
            assert_eq!(val, v2, "split({k}) must behave like split(2)");
        }
        assert_eq!(t2.len(), 3);
        assert_eq!(v2.len(), 3);
    }

    #[test]
    fn from_profile_matches_profile_paths() {
        let p = program();
        let data = InputData::new();
        let profile = llmulator_sim::profile(&p, &data).expect("profiles");
        let direct = Sample::from_profile(&p, Some(&data), &profile, false);
        assert_eq!(direct, Sample::profile(&p, Some(&data)).expect("profiles"));
        let reasoning = Sample::from_profile(&p, Some(&data), &profile, true);
        assert_eq!(
            reasoning,
            Sample::profile_reasoning(&p, Some(&data)).expect("profiles")
        );
    }

    #[test]
    fn split_is_deterministic_and_partitioning() {
        let s = Sample::profile(&program(), None).expect("profiles");
        let ds: Dataset = std::iter::repeat_n(s, 10).collect();
        let (train, val) = ds.split(5);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        let (t2, v2) = ds.split(5);
        assert_eq!(train, t2);
        assert_eq!(val, v2);
    }
}
