//! The crate-spanning error type for the prediction API.
//!
//! Every fallible entry point of the public surface — simulation, model
//! persistence, dataset caching, the [`crate::engine`] module and the CLI —
//! reports failures through one [`Error`] enum. Each variant either wraps
//! the domain error that caused it (exposed via
//! [`std::error::Error::source`], so callers can walk the full causal chain)
//! or carries a self-contained description. The CLI renders that chain in
//! exit messages; the serve daemon renders it as a structured JSON error
//! object.

use crate::persist::PersistError;
use llmulator_ir::IrError;
use llmulator_sim::SimError;
use std::fmt;

/// Unified error for the public prediction API.
#[derive(Debug)]
pub enum Error {
    /// The cycle simulator / profiler failed.
    Sim(SimError),
    /// Program parsing, validation or IR interpretation failed.
    Ir(IrError),
    /// Model or dataset persistence (including the on-disk cache) failed.
    Persist(PersistError),
    /// A plain filesystem or stream operation failed (wrap with
    /// [`Error::context`] to say which).
    Io(std::io::Error),
    /// A request named a model the engine has not loaded.
    UnknownModel {
        /// The requested model name.
        name: String,
        /// Names the engine does have, in registration order.
        available: Vec<String>,
    },
    /// A request was structurally invalid (empty input set, metric the
    /// model cannot produce, token input to an IR-featurizing baseline, …).
    InvalidRequest(String),
    /// The serving queue was at capacity and the request was shed instead
    /// of queued (see `crate::serve_pool::ServePool`). Clients should back
    /// off and retry; the request was **not** executed.
    Overloaded {
        /// Queue depth at the moment of shedding.
        depth: usize,
        /// The configured `--max-queue` limit.
        limit: usize,
    },
    /// A command-line argument could not be interpreted.
    InvalidArgument(String),
    /// The server hit an internal failure (a contained panic, or an
    /// injected fault in chaos tests) while executing this request. The
    /// request may or may not have had side effects; batchmates were
    /// unaffected.
    Internal(String),
    /// The request sat in the queue past its deadline (`timeout_ms` on the
    /// wire, or `--default-timeout-ms`) and was shed without executing.
    DeadlineExceeded {
        /// How long the request waited before being shed, in milliseconds.
        waited_ms: u64,
        /// The deadline it was held to, in milliseconds.
        timeout_ms: u64,
    },
    /// A higher-level operation failed; `source` says why. This is the
    /// variant that gives exit messages their `caused by:` chain.
    Context {
        /// What was being attempted (e.g. `cannot load model \`m.json\``).
        message: String,
        /// The underlying failure.
        source: Box<Error>,
    },
}

impl Error {
    /// Wraps `self` with a description of the failed operation, extending
    /// the `source()` chain by one link.
    #[must_use]
    pub fn context(self, message: impl Into<String>) -> Error {
        Error::Context {
            message: message.into(),
            source: Box::new(self),
        }
    }

    /// The causal chain as one message per link, deduplicated: a link whose
    /// text the previous link already embeds (wrappers like
    /// [`PersistError`] display their cause inline) is dropped, so each
    /// line adds information.
    pub fn chain_messages(&self) -> Vec<String> {
        let mut messages = vec![self.to_string()];
        let mut prev = messages[0].clone();
        let mut cur = std::error::Error::source(self);
        while let Some(e) = cur {
            let msg = e.to_string();
            if !prev.contains(&msg) {
                messages.push(msg.clone());
            }
            prev = msg;
            cur = e.source();
        }
        messages
    }

    /// Renders the full causal chain, one `caused by:` line per link — the
    /// form the CLI prints on a non-zero exit.
    pub fn chain(&self) -> String {
        self.chain_messages().join("\n  caused by: ")
    }

    /// Stable machine-readable tag for the wire protocol (one per variant;
    /// `Context` reports its root cause's kind).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Sim(_) => "sim",
            Error::Ir(_) => "ir",
            Error::Persist(_) => "persist",
            Error::Io(_) => "io",
            Error::UnknownModel { .. } => "unknown_model",
            Error::InvalidRequest(_) => "invalid_request",
            Error::Overloaded { .. } => "overloaded",
            Error::InvalidArgument(_) => "invalid_argument",
            Error::Internal(_) => "internal",
            Error::DeadlineExceeded { .. } => "deadline_exceeded",
            Error::Context { source, .. } => source.kind(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Ir(e) => write!(f, "{e}"),
            Error::Persist(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "i/o failed: {e}"),
            Error::UnknownModel { name, available } => {
                if available.is_empty() {
                    write!(f, "unknown model `{name}` (no models loaded)")
                } else {
                    write!(
                        f,
                        "unknown model `{name}` (loaded: {})",
                        available.join(", ")
                    )
                }
            }
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::Overloaded { depth, limit } => write!(
                f,
                "server overloaded: queue depth {depth} at limit {limit}, request shed"
            ),
            Error::InvalidArgument(msg) => write!(f, "{msg}"),
            Error::Internal(msg) => write!(f, "internal server error: {msg}"),
            Error::DeadlineExceeded {
                waited_ms,
                timeout_ms,
            } => write!(
                f,
                "deadline exceeded: request waited {waited_ms} ms past its {timeout_ms} ms \
                 timeout and was shed without executing"
            ),
            Error::Context { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Ir(e) => Some(e),
            Error::Persist(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Context { source, .. } => Some(source.as_ref()),
            Error::UnknownModel { .. }
            | Error::InvalidRequest(_)
            | Error::Overloaded { .. }
            | Error::InvalidArgument(_)
            | Error::Internal(_)
            | Error::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Sim(e)
    }
}

impl From<IrError> for Error {
    fn from(e: IrError) -> Error {
        Error::Ir(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Error {
        Error::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as StdError;

    #[test]
    fn wrapping_variants_expose_their_source() {
        let e = Error::from(SimError::Unbound("n".into()));
        assert!(e.source().is_some(), "Sim wraps");
        let e = Error::from(IrError::Unbound("x".into()));
        assert!(e.source().is_some(), "Ir wraps");
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(PersistError::Io(io));
        assert!(e.source().is_some(), "Persist wraps");
    }

    #[test]
    fn context_extends_the_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e = Error::from(PersistError::Io(io)).context("cannot load model `m.json`");
        assert_eq!(e.to_string(), "cannot load model `m.json`");
        let chain = e.chain();
        assert!(chain.contains("cannot load model"), "head: {chain}");
        assert!(
            chain.contains("caused by: model file i/o failed"),
            "{chain}"
        );
        assert!(chain.contains("no such file"), "root cause: {chain}");
        // The io link repeats what the persist link already embeds, so the
        // rendered chain dedups it: context -> persist only.
        assert_eq!(chain.matches("caused by:").count(), 1, "{chain}");
        assert_eq!(e.chain_messages().len(), 2, "{chain}");
    }

    #[test]
    fn kind_sees_through_context() {
        let e = Error::InvalidRequest("empty".into()).context("while serving");
        assert_eq!(e.kind(), "invalid_request");
        assert_eq!(Error::Sim(SimError::Unbound("n".into())).kind(), "sim");
    }

    #[test]
    fn unknown_model_lists_the_roster() {
        let e = Error::UnknownModel {
            name: "big".into(),
            available: vec!["default".into(), "tlp".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("big") && msg.contains("default") && msg.contains("tlp"));
        let none = Error::UnknownModel {
            name: "x".into(),
            available: vec![],
        };
        assert!(none.to_string().contains("no models loaded"));
    }

    #[test]
    fn fault_variants_have_stable_kinds_and_messages() {
        let e = Error::Internal("contained panic in batch".into());
        assert_eq!(e.kind(), "internal");
        assert!(e.to_string().contains("contained panic"), "{e}");
        assert!(e.source().is_none());
        let e = Error::DeadlineExceeded {
            waited_ms: 120,
            timeout_ms: 50,
        };
        assert_eq!(e.kind(), "deadline_exceeded");
        let msg = e.to_string();
        assert!(msg.contains("120") && msg.contains("50"), "{msg}");
        assert!(e.source().is_none());
        assert_eq!(
            e.context("while draining").kind(),
            "deadline_exceeded",
            "kind sees through context"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
