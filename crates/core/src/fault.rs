//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] maps *arrival indices* — the order in which the pool
//! accepted requests, assigned under the queue lock — to [`FaultAction`]s.
//! Threaded into a pool via `ServePool::start_with_faults` (a non-default
//! constructor: production paths use `ServePool::start`, which carries an
//! empty plan and pays only a map lookup per batch), it lets tests and the
//! CI chaos-smoke job inject panics, delays and forced errors at *chosen*
//! requests and then assert the fault-isolation invariant: every accepted
//! request still gets exactly one response, non-faulted answers are
//! bit-identical to a fault-free run, and drain still completes.
//!
//! Plans are immutable after construction and faults *re-fire* every time
//! the same arrival index is executed — that is what makes the single-item
//! retry after a contained batch panic deterministically re-identify the
//! offending request instead of letting it slip through on the retry.
//!
//! Two construction styles:
//!
//! * explicit — [`FaultPlan::new`] + [`panic_at`](FaultPlan::panic_at) /
//!   [`delay_at`](FaultPlan::delay_at) / [`error_at`](FaultPlan::error_at);
//! * textual — [`FaultPlan::from_spec`] parses the `LLMULATOR_FAULTS`
//!   environment grammar, e.g. `panic@3,11;delay@6=30;error@9` or
//!   `seeded:42:24:10:10:5` (seed, request count, panic/delay/error
//!   percentages), so CI can select a plan without recompiling.

use crate::error::Error;
use std::collections::BTreeMap;
use std::sync::Once;
use std::time::Duration;

/// Marker embedded in every injected panic payload and forced-error
/// message, so tests can tell injected faults from real bugs (and the
/// panic-hook filter installed by [`silence_injected_panics`] knows which
/// reports to swallow).
pub const FAULT_MARKER: &str = "fault injection";

/// What to do to the request at a given arrival index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the (unwind-protected) batch execution, exercising the
    /// containment path: the request is answered `internal`, batchmates
    /// get real answers.
    Panic,
    /// Sleep this long before executing the batch the request rides in —
    /// simulates a slow model call so queued deadlines can expire.
    Delay(Duration),
    /// Answer the request with a structured `internal` error without
    /// executing it.
    Error,
}

/// A deterministic, immutable plan of injected faults keyed by arrival
/// index. See the module docs for semantics and the spec grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    actions: BTreeMap<u64, FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; what `ServePool::start` uses).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects a panic at arrival index `at`.
    #[must_use]
    pub fn panic_at(mut self, at: u64) -> FaultPlan {
        self.actions.insert(at, FaultAction::Panic);
        self
    }

    /// Injects a pre-execution delay at arrival index `at`.
    #[must_use]
    pub fn delay_at(mut self, at: u64, delay: Duration) -> FaultPlan {
        self.actions.insert(at, FaultAction::Delay(delay));
        self
    }

    /// Injects a forced `internal` error at arrival index `at`.
    #[must_use]
    pub fn error_at(mut self, at: u64) -> FaultPlan {
        self.actions.insert(at, FaultAction::Error);
        self
    }

    /// Derives a plan over arrival indices `0..n` from `seed`: each index
    /// independently draws panic/delay/error with the given percentage
    /// weights (evaluated in that order; delays are a fixed 5 ms — long
    /// enough to overlap queue waits, short enough for tests). The same
    /// `(seed, n, weights)` always yields the same plan.
    pub fn seeded(seed: u64, n: u64, panic_pct: u8, delay_pct: u8, error_pct: u8) -> FaultPlan {
        let mut plan = FaultPlan::new();
        // Golden-ratio mix keeps distinct seeds distinct (a plain `| 1`
        // would collapse adjacent even/odd seeds); xorshift needs a
        // nonzero start.
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        for at in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let roll = (state % 100) as u8;
            if roll < panic_pct {
                plan.actions.insert(at, FaultAction::Panic);
            } else if roll < panic_pct.saturating_add(delay_pct) {
                plan.actions
                    .insert(at, FaultAction::Delay(Duration::from_millis(5)));
            } else if roll
                < panic_pct
                    .saturating_add(delay_pct)
                    .saturating_add(error_pct)
            {
                plan.actions.insert(at, FaultAction::Error);
            }
        }
        plan
    }

    /// Parses the `LLMULATOR_FAULTS` grammar: `;`-separated clauses, each
    /// `panic@I[,J,...]`, `delay@I[,J,...]=MS`, `error@I[,J,...]`, or
    /// `seeded:SEED:N:PANIC_PCT:DELAY_PCT:ERROR_PCT`. Whitespace around
    /// clauses is ignored; an empty string is the empty plan.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, Error> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(rest) = clause.strip_prefix("seeded:") {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 5 {
                    return Err(Error::InvalidArgument(format!(
                        "fault spec `{clause}`: expected seeded:SEED:N:PANIC_PCT:DELAY_PCT:ERROR_PCT"
                    )));
                }
                let nums: Result<Vec<u64>, _> = parts.iter().map(|p| p.trim().parse()).collect();
                let nums = nums.map_err(|_| {
                    Error::InvalidArgument(format!("fault spec `{clause}`: non-numeric field"))
                })?;
                let seeded = FaultPlan::seeded(
                    nums[0],
                    nums[1],
                    nums[2].min(100) as u8,
                    nums[3].min(100) as u8,
                    nums[4].min(100) as u8,
                );
                plan.actions.extend(seeded.actions);
                continue;
            }
            let (kind, rest) = clause.split_once('@').ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "fault spec clause `{clause}`: expected KIND@INDEX[,...] or seeded:..."
                ))
            })?;
            let (indices, delay) = match kind {
                "delay" => {
                    let (idx, ms) = rest.split_once('=').ok_or_else(|| {
                        Error::InvalidArgument(format!(
                            "fault spec clause `{clause}`: delay needs `=MS`"
                        ))
                    })?;
                    let ms: u64 = ms.trim().parse().map_err(|_| {
                        Error::InvalidArgument(format!(
                            "fault spec clause `{clause}`: bad millisecond value"
                        ))
                    })?;
                    (idx, Some(Duration::from_millis(ms)))
                }
                "panic" | "error" => (rest, None),
                other => {
                    return Err(Error::InvalidArgument(format!(
                        "fault spec clause `{clause}`: unknown kind `{other}`"
                    )))
                }
            };
            for index in indices.split(',') {
                let at: u64 = index.trim().parse().map_err(|_| {
                    Error::InvalidArgument(format!(
                        "fault spec clause `{clause}`: bad arrival index `{index}`"
                    ))
                })?;
                let action = match kind {
                    "panic" => FaultAction::Panic,
                    "error" => FaultAction::Error,
                    _ => FaultAction::Delay(delay.expect("delay parsed above")),
                };
                plan.actions.insert(at, action);
            }
        }
        Ok(plan)
    }

    /// The action injected at arrival index `at`, if any. Faults are not
    /// consumed: querying the same index again returns the same action.
    pub fn action(&self, at: u64) -> Option<FaultAction> {
        self.actions.get(&at).copied()
    }

    /// `true` when the plan injects nothing (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Number of arrival indices with an injected fault.
    pub fn len(&self) -> usize {
        self.actions.len()
    }
}

/// The payload used for injected panics; contains [`FAULT_MARKER`].
pub fn injected_panic_message(at: u64) -> String {
    format!("{FAULT_MARKER}: injected panic (request {at})")
}

/// The message used for injected forced errors; contains [`FAULT_MARKER`].
pub fn injected_error_message(at: u64) -> String {
    format!("{FAULT_MARKER}: forced error (request {at})")
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// backtrace spam for *injected* panics — payloads containing
/// [`FAULT_MARKER`] — while forwarding every real panic to the previous
/// hook untouched. Chaos tests call this so hundreds of intentional panics
/// do not drown the test output; the daemon deliberately does **not**, so
/// contained panics stay visible in its stderr log.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(FAULT_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(FAULT_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_query_without_consuming() {
        let plan = FaultPlan::new()
            .panic_at(3)
            .delay_at(6, Duration::from_millis(30))
            .error_at(9);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.action(3), Some(FaultAction::Panic));
        assert_eq!(plan.action(3), Some(FaultAction::Panic), "not consumed");
        assert_eq!(
            plan.action(6),
            Some(FaultAction::Delay(Duration::from_millis(30)))
        );
        assert_eq!(plan.action(9), Some(FaultAction::Error));
        assert_eq!(plan.action(0), None);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn spec_round_trips_the_explicit_grammar() {
        let plan = FaultPlan::from_spec("panic@3,11; delay@6=30 ;error@9").expect("valid spec");
        assert_eq!(plan.action(3), Some(FaultAction::Panic));
        assert_eq!(plan.action(11), Some(FaultAction::Panic));
        assert_eq!(
            plan.action(6),
            Some(FaultAction::Delay(Duration::from_millis(30)))
        );
        assert_eq!(plan.action(9), Some(FaultAction::Error));
        assert_eq!(plan.len(), 4);
        assert!(FaultPlan::from_spec("").expect("empty ok").is_empty());
        assert!(FaultPlan::from_spec("  ;; ").expect("blank ok").is_empty());
    }

    #[test]
    fn spec_rejects_malformed_clauses_with_invalid_argument() {
        for bad in [
            "panic",
            "panic@x",
            "delay@3",
            "delay@3=abc",
            "explode@1",
            "seeded:1:2:3",
            "seeded:a:2:3:4:5",
        ] {
            let err = FaultPlan::from_spec(bad).expect_err(bad);
            assert_eq!(err.kind(), "invalid_argument", "{bad}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_weight_sensitive() {
        let a = FaultPlan::seeded(42, 100, 10, 10, 5);
        let b = FaultPlan::seeded(42, 100, 10, 10, 5);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::seeded(43, 100, 10, 10, 5);
        assert_ne!(a, c, "different seed, different plan");
        assert!(FaultPlan::seeded(7, 200, 0, 0, 0).is_empty());
        let all = FaultPlan::seeded(7, 50, 100, 0, 0);
        assert_eq!(all.len(), 50, "100% panic weight faults every index");
        // Spec form matches the direct constructor.
        let via_spec = FaultPlan::from_spec("seeded:42:100:10:10:5").expect("valid");
        assert_eq!(a, via_spec);
    }

    #[test]
    fn injected_messages_carry_the_marker() {
        assert!(injected_panic_message(7).contains(FAULT_MARKER));
        assert!(injected_panic_message(7).contains('7'));
        assert!(injected_error_message(9).contains(FAULT_MARKER));
    }
}
