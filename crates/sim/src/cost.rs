//! Cycle-cost accounting primitives.

use llmulator_hls::cells::{binop_fu, intrinsic_fu, spec, FuKind};
use llmulator_ir::{BinOp, HardwareParams, Intrinsic};
use serde::{Deserialize, Serialize};

/// Number of concurrent read ports on an operator's memory interface.
pub const READ_PORTS: u64 = 2;
/// Number of concurrent write ports on an operator's memory interface.
pub const WRITE_PORTS: u64 = 1;
/// Per-iteration loop control overhead (increment + branch) in cycles.
pub const LOOP_OVERHEAD: u64 = 1;
/// Call/return overhead per graph invocation in cycles.
pub const INVOKE_OVERHEAD: u64 = 8;

/// Cost accumulated while evaluating one lane (iteration) of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneCost {
    /// Compute cycles (unit latencies along the evaluation chain).
    pub compute: u64,
    /// Number of memory loads issued.
    pub loads: u64,
    /// Number of memory stores issued.
    pub stores: u64,
}

impl LaneCost {
    /// Adds another lane's cost sequentially (same lane, later in time).
    pub fn sequential(&mut self, other: LaneCost) {
        self.compute += other.compute;
        self.loads += other.loads;
        self.stores += other.stores;
    }

    /// Converts this lane cost into cycles under the memory parameters,
    /// assuming loads pipeline across [`READ_PORTS`] and stores across
    /// [`WRITE_PORTS`].
    pub fn cycles(&self, hw: &HardwareParams) -> u64 {
        let load_cycles = self.loads.div_ceil(READ_PORTS) * hw.mem_read_delay as u64;
        let store_cycles = self.stores.div_ceil(WRITE_PORTS) * hw.mem_write_delay as u64;
        self.compute + load_cycles + store_cycles
    }
}

/// Combines lanes executing *in parallel* (an unrolled group): compute is the
/// slowest lane; memory traffic contends on the shared ports.
pub fn parallel_cycles(lanes: &[LaneCost], hw: &HardwareParams) -> u64 {
    if lanes.is_empty() {
        return 0;
    }
    let max_compute = lanes.iter().map(|l| l.compute).max().unwrap_or(0);
    let total_loads: u64 = lanes.iter().map(|l| l.loads).sum();
    let total_stores: u64 = lanes.iter().map(|l| l.stores).sum();
    let load_cycles = total_loads.div_ceil(READ_PORTS) * hw.mem_read_delay as u64;
    let store_cycles = total_stores.div_ceil(WRITE_PORTS) * hw.mem_write_delay as u64;
    max_compute + load_cycles + store_cycles
}

/// Latency in cycles of a binary operation.
pub fn binop_latency(op: BinOp) -> u64 {
    spec(binop_fu(op)).latency as u64
}

/// Latency in cycles of an intrinsic call.
pub fn intrinsic_latency(func: Intrinsic) -> u64 {
    spec(intrinsic_fu(func)).latency as u64
}

/// Latency of a unary operation (logic unit).
pub fn unary_latency() -> u64 {
    spec(FuKind::Logic).latency as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareParams {
        HardwareParams::default() // 10-cycle memory
    }

    #[test]
    fn sequential_accumulates() {
        let mut a = LaneCost {
            compute: 2,
            loads: 1,
            stores: 0,
        };
        a.sequential(LaneCost {
            compute: 3,
            loads: 1,
            stores: 1,
        });
        assert_eq!(a.compute, 5);
        assert_eq!(a.loads, 2);
        assert_eq!(a.stores, 1);
    }

    #[test]
    fn cycles_respect_ports() {
        let lane = LaneCost {
            compute: 4,
            loads: 4,
            stores: 1,
        };
        // 4 loads over 2 ports = 2 × 10; 1 store = 1 × 10.
        assert_eq!(lane.cycles(&hw()), 4 + 20 + 10);
    }

    #[test]
    fn parallel_takes_max_compute_but_sums_memory() {
        let lanes = vec![
            LaneCost {
                compute: 5,
                loads: 2,
                stores: 0,
            },
            LaneCost {
                compute: 9,
                loads: 2,
                stores: 0,
            },
        ];
        // max compute 9; 4 loads / 2 ports × 10 = 20.
        assert_eq!(parallel_cycles(&lanes, &hw()), 29);
    }

    #[test]
    fn parallel_of_empty_is_zero() {
        assert_eq!(parallel_cycles(&[], &hw()), 0);
    }

    #[test]
    fn mul_slower_than_add() {
        assert!(binop_latency(BinOp::Mul) > binop_latency(BinOp::Add));
        assert!(intrinsic_latency(Intrinsic::Exp) > binop_latency(BinOp::Mul));
    }
}
