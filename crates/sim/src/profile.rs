//! The ground-truth profiler: combines the HLS flow (static metrics) with the
//! cycle simulator (dynamic metrics) into the paper's output quadruple
//! `<Power, Area, Flip-Flop, Cycles>`.

use crate::compiled::simulate_compiled_with;
use crate::exec::{CycleReport, SimConfig, SimError};
use llmulator_ir::{InputData, Program};
use serde::{Deserialize, Serialize};

/// The four metrics LLMulator predicts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostVector {
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Area in square micrometres.
    pub area_um2: f64,
    /// Flip-flop count.
    pub ff: u64,
    /// Dynamic cycle count for the profiled input.
    pub cycles: u64,
}

/// Which of the four metrics a model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    /// Static power.
    Power,
    /// Chip area.
    Area,
    /// Flip-flop count.
    FlipFlops,
    /// Dynamic cycle count.
    Cycles,
}

impl Metric {
    /// All metrics, in the paper's column order.
    pub fn all() -> &'static [Metric] {
        &[
            Metric::Power,
            Metric::Area,
            Metric::FlipFlops,
            Metric::Cycles,
        ]
    }

    /// True for metrics that depend on runtime input.
    pub fn is_dynamic(self) -> bool {
        matches!(self, Metric::Cycles)
    }

    /// Paper column label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Power => "Power",
            Metric::Area => "Area",
            Metric::FlipFlops => "FF",
            Metric::Cycles => "Cycles",
        }
    }
}

impl CostVector {
    /// Reads one metric as `f64`.
    pub fn metric(&self, m: Metric) -> f64 {
        match m {
            Metric::Power => self.power_mw,
            Metric::Area => self.area_um2,
            Metric::FlipFlops => self.ff as f64,
            Metric::Cycles => self.cycles as f64,
        }
    }
}

/// A full ground-truth profile: cost vector plus the RTL features and the
/// cycle-level trace that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// The four predicted metrics' ground truth.
    pub cost: CostVector,
    /// RTL-level features (the `<think>` payload).
    pub features: llmulator_hls::RtlFeatures,
    /// Cycle simulation details.
    pub cycles: CycleReport,
}

/// Profiles a program on one input with default simulation limits.
///
/// # Errors
///
/// Propagates [`SimError`] from the cycle simulator.
pub fn profile(program: &Program, data: &InputData) -> Result<Profile, SimError> {
    profile_with(program, data, SimConfig::default())
}

/// Profiles with explicit simulation limits.
///
/// # Errors
///
/// Propagates [`SimError`] from the cycle simulator.
pub fn profile_with(
    program: &Program,
    data: &InputData,
    config: SimConfig,
) -> Result<Profile, SimError> {
    let hls = llmulator_hls::compile(program);
    // Ground truth flows through the compiled engine (bit-identical to the
    // step interpreter, which remains the differential-testing oracle).
    let cycles = simulate_compiled_with(program, data, config)?;
    Ok(Profile {
        cost: CostVector {
            power_mw: hls.total.power_mw,
            area_um2: hls.total.area_um2,
            ff: hls.total.ff,
            cycles: cycles.total_cycles,
        },
        features: hls.features,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, LValue, Stmt};

    fn program() -> Program {
        let op = OperatorBuilder::new("vadd")
            .array_param("a", [32])
            .array_param("b", [32])
            .array_param("c", [32])
            .loop_nest(&[("i", 32)], |idx| {
                vec![Stmt::assign(
                    LValue::store("c", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::load("b", vec![idx[0].clone()]),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn profile_produces_all_four_metrics() {
        let p = profile(&program(), &InputData::new()).expect("profiles");
        assert!(p.cost.power_mw > 0.0);
        assert!(p.cost.area_um2 > 0.0);
        assert!(p.cost.ff > 0);
        assert!(p.cost.cycles > 0);
        for &m in Metric::all() {
            assert!(p.cost.metric(m) > 0.0);
        }
    }

    #[test]
    fn only_cycles_is_dynamic() {
        assert!(Metric::Cycles.is_dynamic());
        assert!(!Metric::Power.is_dynamic());
        assert!(!Metric::Area.is_dynamic());
        assert!(!Metric::FlipFlops.is_dynamic());
    }

    #[test]
    fn labels_match_paper_columns() {
        let labels: Vec<_> = Metric::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["Power", "Area", "FF", "Cycles"]);
    }
}
