//! Static cycle bounds mirroring the interpreter's cost accounting.
//!
//! Walks an operator body with the same cost model `exec` applies at run
//! time — lane pooling across straight-line statements, unroll-group
//! retirement with memory-port contention, per-group loop overhead, invoke
//! overhead — but with trip counts and branch outcomes taken from the static
//! analysis (`llmulator_ir::bounds`) instead of concrete inputs. The result
//! is a `[min, max]` cycle interval that brackets `simulate`'s
//! `total_cycles` on every successful run, collapsing to an exact value when
//! every loop bound and branch folds at compile time.
//!
//! Soundness leans on two facts checked by the `analysis_oracle` proptests:
//! the loop-group cost is monotone in the trip count (executing one more
//! iteration never makes a loop cheaper), and [`parallel_cycles`] is
//! monotone in each lane component (so componentwise min/max lanes bound any
//! actual mix of per-iteration lanes).

use crate::cost::{
    binop_latency, intrinsic_latency, parallel_cycles, unary_latency, LaneCost, INVOKE_OVERHEAD,
};
use crate::exec::{group_overhead, unroll_factor};
use llmulator_ir::bounds::{CountInterval, OperatorBounds, ProgramBounds};
use llmulator_ir::{Expr, ForLoop, HardwareParams, LValue, LoopPragma, Operator, Program, Stmt};
use serde::{Deserialize, Serialize};

/// An inclusive cycle interval; `max == None` means statically unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBounds {
    /// Fewest cycles any successful run can take.
    pub min: u64,
    /// Most cycles any successful run can take (`None` = unbounded).
    pub max: Option<u64>,
}

impl CycleBounds {
    /// The `[0, 0]` interval.
    pub const ZERO: CycleBounds = CycleBounds {
        min: 0,
        max: Some(0),
    };

    /// True when `cycles` lies inside the interval.
    pub fn contains(&self, cycles: u64) -> bool {
        self.min <= cycles && self.max.is_none_or(|m| cycles <= m)
    }

    /// True when the interval pins a single value.
    pub fn is_exact(&self) -> bool {
        self.max == Some(self.min)
    }

    /// Interval sum. A named method rather than `std::ops::Add` because it
    /// saturates, matching `CountInterval::add` in llmulator-ir.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: CycleBounds) -> CycleBounds {
        CycleBounds {
            min: self.min.saturating_add(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }
}

impl std::fmt::Display for CycleBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max {
            Some(m) if m == self.min => write!(f, "{}", self.min),
            Some(m) => write!(f, "[{}, {m}]", self.min),
            None => write!(f, "[{}, inf)", self.min),
        }
    }
}

/// Cycle bounds for every invocation of a program plus the bracketing total
/// (including per-invocation invoke overhead, like `CycleReport`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramCycleBounds {
    /// Per-invocation bounds, in graph order (unresolvable operators are
    /// skipped, matching `ProgramBounds`).
    pub invocations: Vec<CycleBounds>,
    /// Bounds on `CycleReport::total_cycles`.
    pub total: CycleBounds,
}

/// Computes cycle bounds for a whole program from its (seeded) count bounds.
/// `bounds` must come from `analyze_program_bounds` on the same program.
pub fn program_cycle_bounds(program: &Program, bounds: &ProgramBounds) -> ProgramCycleBounds {
    let mut invocations = Vec::new();
    let mut total = CycleBounds::ZERO;
    let mut next = 0;
    for inv in &program.graph.invocations {
        let Some(op) = program.operator(&inv.op) else {
            continue;
        };
        let Some(ob) = bounds.invocations.get(next) else {
            break;
        };
        next += 1;
        let cb = operator_cycle_bounds(op, &program.hw, ob);
        total = total.add(cb);
        invocations.push(cb);
    }
    ProgramCycleBounds { invocations, total }
}

/// Cycle bounds for one operator invocation (invoke overhead included).
pub fn operator_cycle_bounds(
    op: &Operator,
    hw: &HardwareParams,
    bounds: &OperatorBounds,
) -> CycleBounds {
    let mut w = Walker {
        bounds,
        hw,
        next_id: 0,
    };
    let b = w.walk_block(&op.body);
    let min = b
        .lane_lo
        .cycles(hw)
        .saturating_add(b.nested.lo)
        .saturating_add(INVOKE_OVERHEAD);
    let max = b.nested.hi.map(|nested| {
        b.lane_hi
            .cycles(hw)
            .saturating_add(nested)
            .saturating_add(INVOKE_OVERHEAD)
    });
    CycleBounds { min, max }
}

/// Static bounds on a statement block's cost, in the interpreter's own
/// decomposition: a straight-line lane interval (pooled before conversion to
/// cycles, exactly as `exec_block` pools) plus already-converted nested-loop
/// cycles.
struct BlockBounds {
    lane_lo: LaneCost,
    lane_hi: LaneCost,
    nested: CountInterval,
}

impl BlockBounds {
    fn new() -> BlockBounds {
        BlockBounds {
            lane_lo: LaneCost::default(),
            lane_hi: LaneCost::default(),
            nested: CountInterval::ZERO,
        }
    }
}

struct Walker<'a> {
    bounds: &'a OperatorBounds,
    hw: &'a HardwareParams,
    next_id: usize,
}

impl Walker<'_> {
    fn walk_block(&mut self, stmts: &[Stmt]) -> BlockBounds {
        let mut b = BlockBounds::new();
        for stmt in stmts {
            let id = self.next_id;
            self.next_id += 1;
            match stmt {
                Stmt::Assign { dest, value } => {
                    let lane = assign_lane(dest, value);
                    b.lane_lo.sequential(lane);
                    b.lane_hi.sequential(lane);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let mut lane = LaneCost::default();
                    expr_lane(cond, &mut lane);
                    lane.compute += 1; // branch decision
                    b.lane_lo.sequential(lane);
                    b.lane_hi.sequential(lane);
                    // Both arms advance the id counter; the fold picks which
                    // of them can actually cost anything.
                    let then_b = self.walk_block(then_body);
                    let else_b = self.walk_block(else_body);
                    match self.bounds.cond_folds.get(&id).copied().flatten() {
                        Some(true) => {
                            b.lane_lo.sequential(then_b.lane_lo);
                            b.lane_hi.sequential(then_b.lane_hi);
                            b.nested = b.nested.add(then_b.nested);
                        }
                        Some(false) => {
                            b.lane_lo.sequential(else_b.lane_lo);
                            b.lane_hi.sequential(else_b.lane_hi);
                            b.nested = b.nested.add(else_b.nested);
                        }
                        None => {
                            b.lane_lo
                                .sequential(lane_min(then_b.lane_lo, else_b.lane_lo));
                            b.lane_hi
                                .sequential(lane_max(then_b.lane_hi, else_b.lane_hi));
                            b.nested = b.nested.add(then_b.nested.join(else_b.nested));
                        }
                    }
                }
                Stmt::For(l) => {
                    let trips = self
                        .bounds
                        .trips
                        .get(&id)
                        .map(|t| t.interval())
                        .unwrap_or(CountInterval { lo: 0, hi: None });
                    let body = self.walk_block(&l.body);
                    b.nested = b.nested.add(self.loop_cycles(l, trips, &body));
                }
            }
        }
        b
    }

    /// Mirrors `exec_loop`: bound-lane cost (the per-iteration `hi`
    /// re-evaluation lane is dropped there too), iteration lanes retired in
    /// unroll groups with per-group overhead, nested cycles passed through.
    fn loop_cycles(&self, l: &ForLoop, trips: CountInterval, body: &BlockBounds) -> CountInterval {
        let mut bound_lane = LaneCost::default();
        expr_lane(&l.lo, &mut bound_lane);
        expr_lane(&l.step, &mut bound_lane);
        let base = bound_lane.cycles(self.hw);
        let factor = unroll_factor(l.pragma, self.hw);
        let nested_total = trips.mul(body.nested);
        let min = base
            .saturating_add(self.grouped(trips.lo, body.lane_lo, factor, l.pragma))
            .saturating_add(nested_total.lo);
        let max = match (trips.hi, nested_total.hi) {
            (Some(t), Some(nested)) => Some(
                base.saturating_add(self.grouped(t, body.lane_hi, factor, l.pragma))
                    .saturating_add(nested),
            ),
            _ => None,
        };
        CountInterval { lo: min, hi: max }
    }

    /// Cycles to retire `trips` identical lanes in groups of `factor`:
    /// monotone in both the trip count and every lane component.
    fn grouped(&self, trips: u64, lane: LaneCost, factor: u64, pragma: LoopPragma) -> u64 {
        if trips == 0 {
            return 0;
        }
        let full = trips / factor;
        let rem = trips % factor;
        let mut cycles: u64 = 0;
        if full > 0 {
            cycles = cycles.saturating_add(full.saturating_mul(self.group_cost(lane, factor)));
        }
        if rem > 0 {
            cycles = cycles.saturating_add(self.group_cost(lane, rem));
        }
        let groups = full.saturating_add(u64::from(rem > 0));
        cycles.saturating_add(groups.saturating_mul(group_overhead(pragma)))
    }

    fn group_cost(&self, lane: LaneCost, lanes: u64) -> u64 {
        parallel_cycles(&vec![lane; lanes as usize], self.hw)
    }
}

fn lane_min(a: LaneCost, b: LaneCost) -> LaneCost {
    LaneCost {
        compute: a.compute.min(b.compute),
        loads: a.loads.min(b.loads),
        stores: a.stores.min(b.stores),
    }
}

fn lane_max(a: LaneCost, b: LaneCost) -> LaneCost {
    LaneCost {
        compute: a.compute.max(b.compute),
        loads: a.loads.max(b.loads),
        stores: a.stores.max(b.stores),
    }
}

/// Exact lane cost of one evaluation of `expr`, mirroring `Machine::eval`
/// (every subexpression evaluates; index arithmetic beyond the first axis is
/// address-generation compute).
fn expr_lane(expr: &Expr, lane: &mut LaneCost) {
    match expr {
        Expr::IntConst(_) | Expr::FloatConst(_) | Expr::Var(_) => {}
        Expr::Load { indices, .. } => {
            for (k, idx) in indices.iter().enumerate() {
                expr_lane(idx, lane);
                lane.compute += u64::from(k > 0);
            }
            lane.loads += 1;
        }
        Expr::Binary { op, lhs, rhs } => {
            expr_lane(lhs, lane);
            expr_lane(rhs, lane);
            lane.compute += binop_latency(*op);
        }
        Expr::Unary { operand, .. } => {
            expr_lane(operand, lane);
            lane.compute += unary_latency();
        }
        Expr::Call { func, args } => {
            for a in args {
                expr_lane(a, lane);
            }
            lane.compute += intrinsic_latency(*func);
        }
    }
}

/// Exact lane cost of executing one `Assign`.
fn assign_lane(dest: &LValue, value: &Expr) -> LaneCost {
    let mut lane = LaneCost::default();
    expr_lane(value, &mut lane);
    if let LValue::Store { indices, .. } = dest {
        for (k, idx) in indices.iter().enumerate() {
            expr_lane(idx, &mut lane);
            lane.compute += u64::from(k > 0);
        }
        lane.stores += 1;
    }
    lane
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate;
    use llmulator_ir::bounds::analyze_program_bounds;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{BinOp, InputData, Tensor};

    fn bounds_of(program: &Program) -> ProgramCycleBounds {
        program_cycle_bounds(program, &analyze_program_bounds(program))
    }

    fn scale_program(n: usize, pragma: LoopPragma) -> Program {
        let op = OperatorBuilder::new("scale")
            .array_param("a", [n])
            .array_param("b", [n])
            .loop_nest_with_pragma(&[("i", n)], pragma, |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) * Expr::int(2),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn const_program_bounds_are_exact() {
        for pragma in [
            LoopPragma::None,
            LoopPragma::UnrollFull,
            LoopPragma::Unroll(4),
            LoopPragma::ParallelFor,
        ] {
            let p = scale_program(37, pragma);
            let b = bounds_of(&p);
            let report = simulate(&p, &InputData::new()).expect("simulates");
            assert!(b.total.is_exact(), "{pragma:?}: {}", b.total);
            assert_eq!(
                b.total.min, report.total_cycles,
                "{pragma:?} static vs dynamic"
            );
        }
    }

    #[test]
    fn dynamic_bound_brackets_every_input() {
        let op = OperatorBuilder::new("dyn")
            .array_param("a", [256])
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(1),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let b = bounds_of(&p);
        assert_eq!(b.total.max, None, "input-tainted bound is unbounded");
        for n in [0i64, 1, 7, 64] {
            let report = simulate(&p, &InputData::new().with("n", n)).expect("simulates");
            assert!(
                b.total.contains(report.total_cycles),
                "n={n}: {} outside {}",
                report.total_cycles,
                b.total
            );
        }
    }

    #[test]
    fn data_branch_brackets_both_outcomes() {
        let op = OperatorBuilder::new("cond")
            .array_param("a", [32])
            .array_param("b", [32])
            .loop_nest(&[("i", 32)], |idx| {
                vec![Stmt::if_then(
                    Expr::binary(
                        BinOp::Gt,
                        Expr::load("a", vec![idx[0].clone()]),
                        Expr::int(0),
                    ),
                    vec![Stmt::assign(
                        LValue::store("b", vec![idx[0].clone()]),
                        Expr::load("a", vec![idx[0].clone()]) * Expr::int(3),
                    )],
                )]
            })
            .build();
        let p = Program::single_op(op);
        let b = bounds_of(&p);
        assert!(!b.total.is_exact());
        let lo = simulate(
            &p,
            &InputData::new().with("buf_a", Tensor::full(vec![32], -1.0)),
        )
        .expect("all-false");
        let hi = simulate(
            &p,
            &InputData::new().with("buf_a", Tensor::full(vec![32], 1.0)),
        )
        .expect("all-true");
        for c in [lo.total_cycles, hi.total_cycles] {
            assert!(b.total.contains(c), "{c} outside {}", b.total);
        }
        // The extremes are the analysis's own extremes: all-false is the
        // cheapest run, all-true the most expensive.
        assert_eq!(b.total.min, lo.total_cycles);
        assert_eq!(b.total.max, Some(hi.total_cycles));
    }

    #[test]
    fn seeded_invocation_constant_restores_exactness() {
        let op = OperatorBuilder::new("dyn")
            .array_param("a", [64])
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(1),
                )]
            })
            .build();
        let mut p = Program::single_op(op);
        p.graph.params.clear();
        p.graph.invocations[0].args[1] = llmulator_ir::Arg::int(12);
        let b = bounds_of(&p);
        assert!(b.total.is_exact(), "{}", b.total);
        let report = simulate(&p, &InputData::new()).expect("simulates");
        assert_eq!(b.total.min, report.total_cycles);
    }

    #[test]
    fn nested_and_multi_invocation_programs_sum() {
        let op = OperatorBuilder::new("nest")
            .array_param("a", [4, 8])
            .loop_nest(&[("i", 4), ("j", 8)], |idx| {
                vec![Stmt::accumulate(
                    "a",
                    vec![idx[0].clone(), idx[1].clone()],
                    Expr::int(1),
                )]
            })
            .build();
        let mut p = Program::single_op(op);
        // Invoke the same operator twice.
        let inv = p.graph.invocations[0].clone();
        p.graph.invocations.push(inv);
        let b = bounds_of(&p);
        assert_eq!(b.invocations.len(), 2);
        assert!(b.total.is_exact());
        let report = simulate(&p, &InputData::new()).expect("simulates");
        assert_eq!(b.total.min, report.total_cycles);
        for (cb, profile) in b.invocations.iter().zip(&report.invocations) {
            assert_eq!(cb.min, profile.cycles);
        }
    }

    #[test]
    fn cycle_bounds_display_and_algebra() {
        assert_eq!(format!("{}", CycleBounds::ZERO), "0");
        let b = CycleBounds {
            min: 3,
            max: Some(9),
        };
        assert_eq!(format!("{b}"), "[3, 9]");
        let inf = CycleBounds { min: 5, max: None };
        assert_eq!(format!("{inf}"), "[5, inf)");
        assert_eq!(b.add(inf).min, 8);
        assert_eq!(b.add(inf).max, None);
        assert!(b.contains(3) && b.contains(9) && !b.contains(10));
    }
}
