//! # llmulator-sim
//!
//! Cycle-level simulation substrate of the LLMulator reproduction — the role
//! Verilator plays in the paper's profiling pipeline.
//!
//! The interpreter executes a dataflow [`llmulator_ir::Program`] against
//! concrete [`llmulator_ir::InputData`], so loop trip counts and branch
//! outcomes follow the *actual inputs*; cycle accounting honours memory
//! read/write delays, functional-unit latencies and loop-mapping pragmas
//! (spatial unrolling executes iteration groups in parallel with memory-port
//! contention).
//!
//! [`profile::profile`] combines the HLS static metrics with a simulation run
//! into the paper's `<Power, Area, Flip-Flop, Cycles>` ground-truth vector.
//!
//! ```
//! use llmulator_ir::builder::OperatorBuilder;
//! use llmulator_ir::{Expr, InputData, Program, Stmt, LValue};
//! use llmulator_sim::simulate;
//!
//! let op = OperatorBuilder::new("fill")
//!     .array_param("a", [16])
//!     .loop_nest(&[("i", 16)], |idx| {
//!         vec![Stmt::assign(
//!             LValue::store("a", vec![idx[0].clone()]),
//!             idx[0].clone(),
//!         )]
//!     })
//!     .build();
//! let report = simulate(&Program::single_op(op), &InputData::new())?;
//! assert!(report.total_cycles > 0);
//! # Ok::<(), llmulator_sim::SimError>(())
//! ```

pub mod bounds;
pub mod compiled;
pub mod cost;
pub mod exec;
pub mod profile;

pub use bounds::{operator_cycle_bounds, program_cycle_bounds, CycleBounds, ProgramCycleBounds};
pub use compiled::{
    compile, simulate_compiled, simulate_compiled_with, CompileSummary, CompiledProgram,
};
pub use cost::LaneCost;
pub use exec::{
    simulate, simulate_traced, simulate_traced_with, simulate_with, CycleReport, ExecStats,
    ExecTrace, InvocationProfile, LoopTrace, OpTrace, SimConfig, SimError,
};
pub use profile::{profile, profile_with, CostVector, Metric, Profile};
