//! The cycle-level interpreter.
//!
//! Executes a [`Program`] against concrete [`InputData`], so control flow —
//! loop trip counts, branch outcomes — follows the *actual inputs*. This is
//! what makes the ground-truth cycle counts input-adaptive, the phenomenon
//! LLMulator's dynamic calibration targets.

use crate::cost::{
    binop_latency, intrinsic_latency, parallel_cycles, unary_latency, LaneCost, INVOKE_OVERHEAD,
    LOOP_OVERHEAD,
};
use llmulator_ir::{
    Arg, BinOp, Dim, Expr, ForLoop, Ident, InputData, Intrinsic, LValue, LoopPragma, Operator,
    Program, Stmt, Tensor, UnOp, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A graph parameter had no runtime binding.
    MissingInput(String),
    /// The invocation referenced an undefined operator or buffer.
    Unbound(String),
    /// The configured iteration budget was exhausted (runaway loop guard).
    BudgetExceeded {
        /// Budget that was configured.
        budget: u64,
    },
    /// A loop step evaluated to zero or negative.
    BadStep(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput(name) => write!(f, "missing runtime input `{name}`"),
            SimError::Unbound(name) => write!(f, "unbound name `{name}`"),
            SimError::BudgetExceeded { budget } => {
                write!(f, "iteration budget of {budget} exceeded")
            }
            SimError::BadStep(var) => write!(f, "loop `{var}` has non-positive step"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum total loop iterations before aborting.
    pub max_iterations: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_iterations: 20_000_000,
        }
    }
}

/// Dynamic execution statistics (the profiler's trace summary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Memory loads issued.
    pub loads: u64,
    /// Memory stores issued.
    pub stores: u64,
    /// Branches whose condition was true.
    pub branches_taken: u64,
    /// Branches whose condition was false.
    pub branches_not_taken: u64,
    /// Total loop iterations executed.
    pub iterations: u64,
    /// Array accesses that wrapped (hardware-style address wrap).
    pub wrapped_accesses: u64,
    /// Divisions by zero (defined as 0, as saturating hardware would).
    pub div_by_zero: u64,
    /// Reads of never-written scalars (returned 0).
    pub undefined_reads: u64,
}

/// Per-invocation cycle profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationProfile {
    /// Operator that was invoked.
    pub op: Ident,
    /// Cycles spent in this invocation (including call overhead).
    pub cycles: u64,
}

/// Full simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Total cycles across all invocations.
    pub total_cycles: u64,
    /// Per-invocation breakdown, in graph order.
    pub invocations: Vec<InvocationProfile>,
    /// Dynamic statistics.
    pub stats: ExecStats,
    /// Final buffer contents, by graph buffer name (for functional checks).
    pub buffers: Vec<(Ident, Tensor)>,
}

impl CycleReport {
    /// The final tensor stored in a graph buffer.
    pub fn buffer(&self, name: &Ident) -> Option<&Tensor> {
        self.buffers.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// Dynamic trip-count summary for one `For` statement across every entry of
/// the loop during one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopTrace {
    /// How many times the loop was entered.
    pub entries: u64,
    /// Fewest iterations any single entry executed.
    pub min_trips: u64,
    /// Most iterations any single entry executed.
    pub max_trips: u64,
}

/// Per-invocation execution trace: statement hit counts keyed by the
/// pre-order statement id (`llmulator_ir::cfg::preorder_stmts` order — the
/// same ids the static bounds and lint passes use).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpTrace {
    /// Operator that was invoked.
    pub op: Ident,
    /// Executions of each statement, indexed by pre-order id.
    pub hits: Vec<u64>,
    /// Per-loop trip summaries, keyed by pre-order id of the `For`.
    pub loops: BTreeMap<usize, LoopTrace>,
}

/// Execution trace for a whole program run, one entry per invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Traces in graph invocation order.
    pub invocations: Vec<OpTrace>,
}

/// Simulates a program with default limits.
///
/// # Errors
///
/// Returns [`SimError`] when a graph parameter is unbound, an invocation
/// references an unknown operator/buffer, or the iteration budget is hit.
pub fn simulate(program: &Program, data: &InputData) -> Result<CycleReport, SimError> {
    simulate_with(program, data, SimConfig::default())
}

/// Simulates a program with explicit limits.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_with(
    program: &Program,
    data: &InputData,
    config: SimConfig,
) -> Result<CycleReport, SimError> {
    let mut machine = Machine::new(program, data, config)?;
    machine.run()
}

/// Simulates a program while recording per-statement hit counts and
/// per-loop trip summaries (default limits).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_traced(
    program: &Program,
    data: &InputData,
) -> Result<(CycleReport, ExecTrace), SimError> {
    simulate_traced_with(program, data, SimConfig::default())
}

/// Like [`simulate_traced`] with explicit limits.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_traced_with(
    program: &Program,
    data: &InputData,
    config: SimConfig,
) -> Result<(CycleReport, ExecTrace), SimError> {
    let mut machine = Machine::new(program, data, config)?;
    machine.tracing = true;
    let report = machine.run()?;
    Ok((
        report,
        ExecTrace {
            invocations: std::mem::take(&mut machine.trace_log),
        },
    ))
}

struct Machine<'a> {
    program: &'a Program,
    config: SimConfig,
    graph_scalars: HashMap<Ident, f64>,
    buffer_index: HashMap<Ident, usize>,
    buffers: Vec<Tensor>,
    stats: ExecStats,
    tracing: bool,
    trace: Option<TraceFrame>,
    trace_log: Vec<OpTrace>,
}

/// Runtime state every engine shares: graph scalars bound from input data,
/// and buffers allocated/seeded the way the interpreter does. Extracted so
/// `compiled` sets up *identically* (same values, same error order).
pub(crate) struct ProgramState {
    pub(crate) graph_scalars: HashMap<Ident, f64>,
    pub(crate) buffer_index: HashMap<Ident, usize>,
    pub(crate) buffers: Vec<Tensor>,
}

/// Binds graph scalar parameters and allocates buffers from runtime data.
///
/// # Errors
///
/// `MissingInput` for unbound graph parameters or unresolvable symbolic
/// buffer dimensions, in declaration order.
pub(crate) fn setup_program(program: &Program, data: &InputData) -> Result<ProgramState, SimError> {
    // Bind graph scalar parameters from runtime data.
    let mut graph_scalars = HashMap::new();
    for p in &program.graph.params {
        let value = data
            .get(p)
            .ok_or_else(|| SimError::MissingInput(p.to_string()))?;
        graph_scalars.insert(p.clone(), value.as_f64());
    }
    // Allocate buffers, resolving symbolic dims through graph scalars and
    // seeding contents from runtime data where a tensor binding exists.
    let mut buffer_index = HashMap::new();
    let mut buffers = Vec::new();
    for decl in &program.graph.buffers {
        let dims: Vec<usize> = decl
            .dims
            .iter()
            .map(|d| match d {
                Dim::Const(n) => Ok(*n),
                Dim::Sym(name) => graph_scalars
                    .get(name)
                    .map(|v| (*v).max(1.0) as usize)
                    .ok_or_else(|| SimError::MissingInput(name.to_string())),
            })
            .collect::<Result<_, _>>()?;
        let len: usize = dims.iter().product::<usize>().max(1);
        let tensor = match data.get(&decl.name) {
            Some(Value::Tensor(src)) => {
                // Copy source data, cycling if shapes disagree.
                Tensor::from_fn(dims.clone(), |i| {
                    if src.is_empty() {
                        0.0
                    } else {
                        src.get(i % src.len()).unwrap_or(0.0)
                    }
                })
            }
            Some(scalar) => Tensor::full(dims.clone(), scalar.as_f64()),
            None => Tensor::zeros(if dims.is_empty() { vec![len] } else { dims }),
        };
        buffer_index.insert(decl.name.clone(), buffers.len());
        buffers.push(tensor);
    }
    Ok(ProgramState {
        graph_scalars,
        buffer_index,
        buffers,
    })
}

/// Trace state for the invocation currently executing. Statements are keyed
/// by their address inside the operator body (stable for the duration of the
/// run) and mapped to pre-order ids.
struct TraceFrame {
    ids: HashMap<usize, usize>,
    hits: Vec<u64>,
    loops: BTreeMap<usize, LoopTrace>,
}

struct Frame {
    arrays: HashMap<Ident, usize>,
    scalars: HashMap<Ident, f64>,
}

impl<'a> Machine<'a> {
    fn new(program: &'a Program, data: &InputData, config: SimConfig) -> Result<Self, SimError> {
        let state = setup_program(program, data)?;
        Ok(Machine {
            program,
            config,
            graph_scalars: state.graph_scalars,
            buffer_index: state.buffer_index,
            buffers: state.buffers,
            stats: ExecStats::default(),
            tracing: false,
            trace: None,
            trace_log: Vec::new(),
        })
    }

    fn run(&mut self) -> Result<CycleReport, SimError> {
        let mut invocations = Vec::new();
        let mut total: u64 = 0;
        let graph = &self.program.graph;
        for inv in &graph.invocations {
            let op = self
                .program
                .operator(&inv.op)
                .ok_or_else(|| SimError::Unbound(inv.op.to_string()))?;
            if self.tracing {
                let mut ids = HashMap::new();
                op.visit_stmts(&mut |s| {
                    let next = ids.len();
                    ids.insert(s as *const Stmt as usize, next);
                });
                let count = ids.len();
                self.trace = Some(TraceFrame {
                    ids,
                    hits: vec![0; count],
                    loops: BTreeMap::new(),
                });
            }
            let frame = self.bind_frame(op, &inv.args)?;
            let cycles = self.exec_operator(op, frame)? + INVOKE_OVERHEAD;
            if let Some(t) = self.trace.take() {
                self.trace_log.push(OpTrace {
                    op: inv.op.clone(),
                    hits: t.hits,
                    loops: t.loops,
                });
            }
            total += cycles;
            invocations.push(InvocationProfile {
                op: inv.op.clone(),
                cycles,
            });
        }
        let buffers = graph
            .buffers
            .iter()
            .map(|decl| {
                let idx = self.buffer_index[&decl.name];
                (decl.name.clone(), self.buffers[idx].clone())
            })
            .collect();
        Ok(CycleReport {
            total_cycles: total,
            invocations,
            stats: self.stats,
            buffers,
        })
    }

    fn bind_frame(&self, op: &Operator, args: &[Arg]) -> Result<Frame, SimError> {
        let mut arrays = HashMap::new();
        let mut scalars = HashMap::new();
        for (param, arg) in op.params.iter().zip(args) {
            match arg {
                Arg::Buffer(name) => {
                    let idx = *self
                        .buffer_index
                        .get(name)
                        .ok_or_else(|| SimError::Unbound(name.to_string()))?;
                    arrays.insert(param.name.clone(), idx);
                }
                Arg::Scalar(expr) => {
                    let v = eval_graph_expr(expr, &self.graph_scalars);
                    scalars.insert(param.name.clone(), v);
                }
            }
        }
        if op.params.len() != args.len() {
            return Err(SimError::Unbound(format!(
                "arity mismatch invoking `{}`",
                op.name
            )));
        }
        Ok(Frame { arrays, scalars })
    }

    fn exec_operator(&mut self, op: &Operator, mut frame: Frame) -> Result<u64, SimError> {
        let lane = self.exec_block(&op.body, &mut frame)?;
        Ok(lane.total_cycles(&self.program.hw))
    }

    fn exec_block(&mut self, block: &[Stmt], frame: &mut Frame) -> Result<BodyCost, SimError> {
        let mut cost = BodyCost::default();
        for stmt in block {
            let c = self.exec_stmt(stmt, frame)?;
            cost.sequential(c);
        }
        Ok(cost)
    }

    /// Records a hit for `stmt` when tracing, returning its pre-order id.
    fn trace_hit(&mut self, stmt: &Stmt) -> Option<usize> {
        let t = self.trace.as_mut()?;
        let id = t.ids.get(&(stmt as *const Stmt as usize)).copied()?;
        t.hits[id] += 1;
        Some(id)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<BodyCost, SimError> {
        let stmt_id = self.trace_hit(stmt);
        match stmt {
            Stmt::Assign { dest, value } => {
                let mut lane = LaneCost::default();
                let v = self.eval(value, frame, &mut lane);
                match dest {
                    LValue::Var(name) => {
                        frame.scalars.insert(name.clone(), v);
                    }
                    LValue::Store { array, indices } => {
                        let flat = self.flat_index(array, indices, frame, &mut lane);
                        if let Some((buf, idx)) = flat {
                            let t = &mut self.buffers[buf];
                            let wrapped = idx % t.len().max(1);
                            if wrapped != idx {
                                self.stats.wrapped_accesses += 1;
                            }
                            t.set(wrapped, v);
                        }
                        lane.stores += 1;
                        self.stats.stores += 1;
                    }
                }
                Ok(BodyCost::lane(lane))
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let mut lane = LaneCost::default();
                let c = self.eval(cond, frame, &mut lane);
                lane.compute += 1; // branch decision
                let mut cost = BodyCost::lane(lane);
                if c != 0.0 {
                    self.stats.branches_taken += 1;
                    cost.sequential(self.exec_block(then_body, frame)?);
                } else {
                    self.stats.branches_not_taken += 1;
                    cost.sequential(self.exec_block(else_body, frame)?);
                }
                Ok(cost)
            }
            Stmt::For(l) => self.exec_loop(l, stmt_id, frame),
        }
    }

    fn exec_loop(
        &mut self,
        l: &ForLoop,
        stmt_id: Option<usize>,
        frame: &mut Frame,
    ) -> Result<BodyCost, SimError> {
        let hw = self.program.hw;
        let mut bound_lane = LaneCost::default();
        let lo = self.eval(&l.lo, frame, &mut bound_lane) as i64;
        let step = self.eval(&l.step, frame, &mut bound_lane) as i64;
        if step <= 0 {
            return Err(SimError::BadStep(l.var.to_string()));
        }
        // Unroll factor (dynamic trip counts permitted: factor adapts).
        let factor = unroll_factor(l.pragma, &hw);

        let mut cycles: u64 = bound_lane.cycles(&hw);
        let mut i = lo;
        let mut trips: u64 = 0;
        let mut lanes: Vec<LaneCost> = Vec::with_capacity(factor as usize);
        let mut nested: u64 = 0;
        loop {
            // Re-evaluate the bound each iteration (C semantics; the bound
            // may be mutated by the body through a scalar).
            let mut hi_lane = LaneCost::default();
            let hi = self.eval(&l.hi, frame, &mut hi_lane) as i64;
            if i >= hi {
                break;
            }
            self.stats.iterations += 1;
            if self.stats.iterations > self.config.max_iterations {
                return Err(SimError::BudgetExceeded {
                    budget: self.config.max_iterations,
                });
            }
            trips += 1;
            frame.scalars.insert(l.var.clone(), i as f64);
            let body = self.exec_block(&l.body, frame)?;
            lanes.push(body.straightline);
            nested += body.nested_cycles;
            if lanes.len() as u64 == factor {
                cycles += parallel_cycles(&lanes, &hw) + group_overhead(l.pragma);
                lanes.clear();
            }
            i += step;
        }
        if !lanes.is_empty() {
            cycles += parallel_cycles(&lanes, &hw) + group_overhead(l.pragma);
            lanes.clear();
        }
        cycles += nested;
        if let (Some(id), Some(t)) = (stmt_id, self.trace.as_mut()) {
            let entry = t.loops.entry(id).or_insert(LoopTrace {
                entries: 0,
                min_trips: u64::MAX,
                max_trips: 0,
            });
            entry.entries += 1;
            entry.min_trips = entry.min_trips.min(trips);
            entry.max_trips = entry.max_trips.max(trips);
        }
        Ok(BodyCost {
            straightline: LaneCost::default(),
            nested_cycles: cycles,
        })
    }

    fn flat_index(
        &mut self,
        array: &Ident,
        indices: &[Expr],
        frame: &mut Frame,
        lane: &mut LaneCost,
    ) -> Option<(usize, usize)> {
        let buf = *frame.arrays.get(array)?;
        let shape = self.buffers[buf].shape().to_vec();
        let mut flat: i64 = 0;
        for (k, idx) in indices.iter().enumerate() {
            let v = self.eval(idx, frame, lane) as i64;
            let dim = shape.get(k).copied().unwrap_or(1) as i64;
            flat = flat * dim + v;
            // Index arithmetic is address-generation work.
            lane.compute += u64::from(k > 0);
        }
        if flat < 0 {
            self.stats.wrapped_accesses += 1;
            flat = flat.rem_euclid(self.buffers[buf].len().max(1) as i64);
        }
        Some((buf, flat as usize))
    }

    fn eval(&mut self, expr: &Expr, frame: &mut Frame, lane: &mut LaneCost) -> f64 {
        match expr {
            Expr::IntConst(v) => *v as f64,
            Expr::FloatConst(v) => *v,
            Expr::Var(name) => {
                if let Some(v) = frame.scalars.get(name) {
                    *v
                } else if let Some(v) = self.graph_scalars.get(name) {
                    *v
                } else {
                    self.stats.undefined_reads += 1;
                    0.0
                }
            }
            Expr::Load { array, indices } => {
                let flat = self.flat_index(array, indices, frame, lane);
                lane.loads += 1;
                self.stats.loads += 1;
                match flat {
                    Some((buf, idx)) => {
                        let t = &self.buffers[buf];
                        let len = t.len().max(1);
                        let wrapped = idx % len;
                        if wrapped != idx {
                            self.stats.wrapped_accesses += 1;
                        }
                        t.get(wrapped).unwrap_or(0.0)
                    }
                    None => {
                        self.stats.undefined_reads += 1;
                        0.0
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, frame, lane);
                let b = self.eval(rhs, frame, lane);
                lane.compute += binop_latency(*op);
                apply_binop(*op, a, b, &mut self.stats)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, frame, lane);
                lane.compute += unary_latency();
                match op {
                    UnOp::Neg => -v,
                    UnOp::Not => f64::from(v == 0.0),
                }
            }
            Expr::Call { func, args } => {
                let vals: Vec<f64> = args.iter().map(|a| self.eval(a, frame, lane)).collect();
                lane.compute += intrinsic_latency(*func);
                apply_intrinsic(*func, &vals)
            }
        }
    }
}

/// Applies a binary operator with the interpreter's saturating-hardware
/// semantics (`x/0 == 0` with a stat bump, integer division when both
/// operands are integral). Shared with the compiled engine so arithmetic can
/// never diverge between the two.
pub(crate) fn apply_binop(op: BinOp, a: f64, b: f64, stats: &mut ExecStats) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                stats.div_by_zero += 1;
                0.0
            } else if a.fract() == 0.0 && b.fract() == 0.0 {
                ((a as i64) / (b as i64)) as f64
            } else {
                a / b
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                stats.div_by_zero += 1;
                0.0
            } else {
                ((a as i64).rem_euclid((b as i64).max(1))) as f64
            }
        }
        BinOp::Lt => f64::from(a < b),
        BinOp::Le => f64::from(a <= b),
        BinOp::Gt => f64::from(a > b),
        BinOp::Ge => f64::from(a >= b),
        BinOp::Eq => f64::from(a == b),
        BinOp::Ne => f64::from(a != b),
        BinOp::And => f64::from(a != 0.0 && b != 0.0),
        BinOp::Or => f64::from(a != 0.0 || b != 0.0),
    }
}

/// Per-group control overhead for a loop's mapping pragma.
pub(crate) fn group_overhead(pragma: LoopPragma) -> u64 {
    match pragma {
        // Fully spatial loops have no per-group control overhead.
        LoopPragma::UnrollFull => 0,
        _ => LOOP_OVERHEAD,
    }
}

/// Number of loop-body lanes retired per group under a mapping pragma.
pub(crate) fn unroll_factor(pragma: LoopPragma, hw: &llmulator_ir::HardwareParams) -> u64 {
    match pragma {
        LoopPragma::None => 1u64,
        LoopPragma::UnrollFull => hw.max_unroll_width as u64,
        LoopPragma::Unroll(k) => (k as u64).clamp(1, hw.max_unroll_width as u64),
        LoopPragma::ParallelFor => hw.parallel_lanes as u64,
    }
    .max(1)
}

pub(crate) fn apply_intrinsic(func: Intrinsic, args: &[f64]) -> f64 {
    let x = args.first().copied().unwrap_or(0.0);
    match func {
        Intrinsic::Exp => x.clamp(-50.0, 50.0).exp(),
        Intrinsic::Sqrt => x.abs().sqrt(),
        Intrinsic::Abs => x.abs(),
        Intrinsic::Relu => x.max(0.0),
        Intrinsic::Sigmoid => 1.0 / (1.0 + (-x.clamp(-50.0, 50.0)).exp()),
        Intrinsic::Tanh => x.tanh(),
        Intrinsic::Log => x.max(1e-12).ln(),
        Intrinsic::Max => x.max(args.get(1).copied().unwrap_or(0.0)),
        Intrinsic::Min => x.min(args.get(1).copied().unwrap_or(0.0)),
    }
}

pub(crate) fn eval_graph_expr(expr: &Expr, scalars: &HashMap<Ident, f64>) -> f64 {
    match expr {
        Expr::IntConst(v) => *v as f64,
        Expr::FloatConst(v) => *v,
        Expr::Var(name) => scalars.get(name).copied().unwrap_or(0.0),
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_graph_expr(lhs, scalars);
            let b = eval_graph_expr(rhs, scalars);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a / b
                    }
                }
                _ => 0.0,
            }
        }
        _ => 0.0,
    }
}

/// The cost of a statement block: straight-line lane cost (combinable across
/// unrolled lanes) plus already-folded nested-loop cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BodyCost {
    straightline: LaneCost,
    nested_cycles: u64,
}

impl BodyCost {
    fn lane(lane: LaneCost) -> BodyCost {
        BodyCost {
            straightline: lane,
            nested_cycles: 0,
        }
    }

    fn sequential(&mut self, other: BodyCost) {
        self.straightline.sequential(other.straightline);
        self.nested_cycles += other.nested_cycles;
    }

    fn total_cycles(&self, hw: &llmulator_ir::HardwareParams) -> u64 {
        self.straightline.cycles(hw) + self.nested_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::HardwareParams;

    fn scale_op(n: usize) -> Program {
        let op = OperatorBuilder::new("scale")
            .array_param("a", [n])
            .array_param("b", [n])
            .loop_nest(&[("i", n)], |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) * Expr::int(2),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn computes_correct_values() {
        let p = scale_op(8);
        let data = InputData::new().with("buf_a", Tensor::from_fn(vec![8], |i| i as f64));
        let report = simulate(&p, &data).expect("simulates");
        let out = report.buffer(&"buf_b".into()).expect("buffer exists");
        for i in 0..8 {
            assert_eq!(out.get(i), Some(2.0 * i as f64));
        }
    }

    #[test]
    fn cycles_scale_with_problem_size() {
        let data = InputData::new();
        let small = simulate(&scale_op(8), &data).expect("small").total_cycles;
        let large = simulate(&scale_op(64), &data).expect("large").total_cycles;
        assert!(large > small * 4, "large {large} vs small {small}");
    }

    #[test]
    fn memory_delay_increases_cycles() {
        let mut p = scale_op(16);
        let data = InputData::new();
        p.hw = HardwareParams::default().with_mem_delay(2);
        let fast = simulate(&p, &data).expect("fast").total_cycles;
        p.hw = HardwareParams::default().with_mem_delay(20);
        let slow = simulate(&p, &data).expect("slow").total_cycles;
        assert!(slow > fast);
    }

    #[test]
    fn dynamic_bound_follows_input() {
        let op = OperatorBuilder::new("dyn")
            .array_param("a", [256])
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(1),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let c8 = simulate(&p, &InputData::new().with("n", 8i64))
            .expect("n=8")
            .total_cycles;
        let c64 = simulate(&p, &InputData::new().with("n", 64i64))
            .expect("n=64")
            .total_cycles;
        assert!(c64 > c8 * 4, "c64 {c64} vs c8 {c8}");
    }

    #[test]
    fn branch_outcomes_change_cycles() {
        // Heavy work only when a[i] > threshold.
        let op = OperatorBuilder::new("cond")
            .array_param("a", [32])
            .array_param("b", [32])
            .loop_nest(&[("i", 32)], |idx| {
                vec![Stmt::if_then(
                    Expr::binary(
                        BinOp::Gt,
                        Expr::load("a", vec![idx[0].clone()]),
                        Expr::int(0),
                    ),
                    vec![Stmt::assign(
                        LValue::store("b", vec![idx[0].clone()]),
                        Expr::call(Intrinsic::Exp, vec![Expr::load("a", vec![idx[0].clone()])]),
                    )],
                )]
            })
            .build();
        let p = Program::single_op(op);
        let none = InputData::new().with("buf_a", Tensor::full(vec![32], -1.0));
        let all = InputData::new().with("buf_a", Tensor::full(vec![32], 1.0));
        let c_none = simulate(&p, &none).expect("none");
        let c_all = simulate(&p, &all).expect("all");
        assert!(c_all.total_cycles > c_none.total_cycles);
        assert_eq!(c_all.stats.branches_taken, 32);
        assert_eq!(c_none.stats.branches_taken, 0);
    }

    #[test]
    fn unrolling_reduces_cycles() {
        let body = |idx: &[Expr]| {
            vec![Stmt::assign(
                LValue::store("b", vec![idx[0].clone()]),
                Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
            )]
        };
        let plain = Program::single_op(
            OperatorBuilder::new("k")
                .array_param("a", [64])
                .array_param("b", [64])
                .loop_nest(&[("i", 64)], body)
                .build(),
        );
        let unrolled = Program::single_op(
            OperatorBuilder::new("k")
                .array_param("a", [64])
                .array_param("b", [64])
                .loop_nest_with_pragma(&[("i", 64)], LoopPragma::UnrollFull, body)
                .build(),
        );
        let data = InputData::new();
        let cp = simulate(&plain, &data).expect("plain").total_cycles;
        let cu = simulate(&unrolled, &data).expect("unrolled").total_cycles;
        assert!(cu < cp, "unrolled {cu} vs plain {cp}");
    }

    #[test]
    fn missing_graph_param_is_an_error() {
        let op = OperatorBuilder::new("dyn")
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |_| vec![])
            .build();
        let p = Program::single_op(op);
        assert!(matches!(
            simulate(&p, &InputData::new()),
            Err(SimError::MissingInput(_))
        ));
    }

    #[test]
    fn budget_guard_fires() {
        let op = OperatorBuilder::new("big")
            .array_param("a", [4])
            .loop_nest(&[("i", 1000)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(0),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let err = simulate_with(
            &p,
            &InputData::new(),
            SimConfig {
                max_iterations: 100,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn trace_records_hits_and_trips() {
        // for i in 0..4 { for j in 0..8 { a[i][j] = 0 } }: pre-order ids are
        // 0 = outer For, 1 = inner For, 2 = the store.
        let op = OperatorBuilder::new("nest")
            .array_param("a", [4, 8])
            .loop_nest(&[("i", 4), ("j", 8)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone(), idx[1].clone()]),
                    Expr::int(0),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let (report, trace) = simulate_traced(&p, &InputData::new()).expect("simulates");
        assert_eq!(trace.invocations.len(), 1);
        let t = &trace.invocations[0];
        assert_eq!(t.hits, vec![1, 4, 32]);
        assert_eq!(
            t.loops[&0],
            LoopTrace {
                entries: 1,
                min_trips: 4,
                max_trips: 4
            }
        );
        assert_eq!(
            t.loops[&1],
            LoopTrace {
                entries: 4,
                min_trips: 8,
                max_trips: 8
            }
        );
        // Tracing never changes the simulation result.
        assert_eq!(report, simulate(&p, &InputData::new()).expect("untraced"));
    }

    #[test]
    fn trace_sees_branch_outcomes() {
        let op = OperatorBuilder::new("cond")
            .array_param("a", [8])
            .array_param("b", [8])
            .loop_nest(&[("i", 8)], |idx| {
                vec![Stmt::if_then(
                    Expr::binary(
                        BinOp::Gt,
                        Expr::load("a", vec![idx[0].clone()]),
                        Expr::int(0),
                    ),
                    vec![Stmt::assign(
                        LValue::store("b", vec![idx[0].clone()]),
                        Expr::int(1),
                    )],
                )]
            })
            .build();
        let p = Program::single_op(op);
        // a alternates sign: the then-arm executes for 4 of 8 iterations.
        let data = InputData::new().with(
            "buf_a",
            Tensor::from_fn(vec![8], |i| if i % 2 == 0 { 1.0 } else { -1.0 }),
        );
        let (_, trace) = simulate_traced(&p, &data).expect("simulates");
        // ids: 0 = For, 1 = If, 2 = store.
        assert_eq!(trace.invocations[0].hits, vec![1, 8, 4]);
    }

    #[test]
    fn deterministic() {
        let p = scale_op(32);
        let data = InputData::new().with("buf_a", Tensor::from_fn(vec![32], |i| (i % 7) as f64));
        let a = simulate(&p, &data).expect("a");
        let b = simulate(&p, &data).expect("b");
        assert_eq!(a, b);
    }

    // ---- error paths ----

    /// Builds a one-operator program whose loop has an explicit step
    /// expression (the builder only emits step 1).
    fn stepped_loop_program(step: Expr) -> Program {
        let mut p = scale_op(8);
        let body = std::mem::take(&mut p.operators[0].body);
        p.operators[0].body = vec![Stmt::For(ForLoop {
            var: "i".into(),
            lo: Expr::int(0),
            hi: Expr::int(8),
            step,
            pragma: LoopPragma::None,
            body,
        })];
        p
    }

    #[test]
    fn zero_step_is_bad_step() {
        let p = stepped_loop_program(Expr::int(0));
        assert_eq!(
            simulate(&p, &InputData::new()).unwrap_err(),
            SimError::BadStep("i".to_string())
        );
    }

    #[test]
    fn negative_step_is_bad_step() {
        let p = stepped_loop_program(Expr::int(-2));
        assert!(matches!(
            simulate(&p, &InputData::new()).unwrap_err(),
            SimError::BadStep(var) if var == "i"
        ));
    }

    #[test]
    fn dynamic_step_evaluating_nonpositive_is_bad_step() {
        // The step is a runtime expression; only execution can reject it.
        let mut p = stepped_loop_program(Expr::var("s"));
        p.operators[0]
            .params
            .push(llmulator_ir::ParamDecl::scalar("s"));
        p.graph.params.push("s".into());
        p.graph.invocations[0]
            .args
            .push(Arg::Scalar(Expr::var("s")));
        assert!(matches!(
            simulate(&p, &InputData::new().with("s", 0i64)).unwrap_err(),
            SimError::BadStep(_)
        ));
        assert!(simulate(&p, &InputData::new().with("s", 2i64)).is_ok());
    }

    #[test]
    fn unknown_operator_is_unbound() {
        let mut p = scale_op(8);
        p.graph.invocations[0].op = "missing_op".into();
        assert_eq!(
            simulate(&p, &InputData::new()).unwrap_err(),
            SimError::Unbound("missing_op".to_string())
        );
    }

    #[test]
    fn unknown_buffer_argument_is_unbound() {
        let mut p = scale_op(8);
        p.graph.invocations[0].args[0] = Arg::Buffer("missing_buf".into());
        assert_eq!(
            simulate(&p, &InputData::new()).unwrap_err(),
            SimError::Unbound("missing_buf".to_string())
        );
    }

    #[test]
    fn arity_mismatch_is_unbound() {
        let mut p = scale_op(8);
        p.graph.invocations[0].args.pop();
        let err = simulate(&p, &InputData::new()).unwrap_err();
        assert!(
            matches!(&err, SimError::Unbound(msg) if msg.contains("arity")),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn missing_symbolic_buffer_dim_is_missing_input() {
        // A buffer dimension referencing a name that is not a graph
        // parameter cannot be resolved at allocation time.
        let mut p = scale_op(8);
        p.graph.buffers[0].dims = vec![Dim::Sym("phantom".into())];
        assert_eq!(
            simulate(&p, &InputData::new()).unwrap_err(),
            SimError::MissingInput("phantom".to_string())
        );
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        // Exactly hitting the budget is fine; one more iteration trips it.
        let p = scale_op(8); // 8 iterations
        let ok = simulate_with(&p, &InputData::new(), SimConfig { max_iterations: 8 });
        assert!(ok.is_ok());
        let err = simulate_with(&p, &InputData::new(), SimConfig { max_iterations: 7 });
        assert_eq!(err.unwrap_err(), SimError::BudgetExceeded { budget: 7 });
    }

    #[test]
    fn sim_errors_render_their_context() {
        assert_eq!(
            SimError::MissingInput("n".into()).to_string(),
            "missing runtime input `n`"
        );
        assert_eq!(
            SimError::Unbound("op".into()).to_string(),
            "unbound name `op`"
        );
        assert_eq!(
            SimError::BudgetExceeded { budget: 9 }.to_string(),
            "iteration budget of 9 exceeded"
        );
        assert_eq!(
            SimError::BadStep("i".into()).to_string(),
            "loop `i` has non-positive step"
        );
    }
}
