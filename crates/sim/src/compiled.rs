//! Analysis-directed compiled simulation.
//!
//! [`compile`] walks each operator body and, for every maximal run of
//! statements that the [`llmulator_ir::taint`] pass proves input-independent
//! *and* the [`llmulator_ir::bounds`] pass can count exactly, pre-computes a
//! per-entry cost delta (cycles, loads, stores, branches, iterations) at
//! compile time. Executing such a *region* then costs one bulk retire instead
//! of per-iteration interpretation; only the data side effects (buffer reads
//! and writes, wrap/div-by-zero/undefined-read statistics) are still played
//! forward, on a slot-indexed machine with no hash lookups. Statements the
//! analyses cannot prove static fall back to an exact replica of the
//! [`crate::exec`] interpreter, so [`simulate_compiled`] is bit-identical to
//! [`crate::simulate`] on every [`CycleReport`] field — the interpreter stays
//! the oracle, the compiled engine is the throughput path.
//!
//! A statement enters a region only when every one of these holds:
//!
//! * `For`: exact static trip count, constant `lo`/`step`, taint-`Const`
//!   bound, effect-free bound expressions, and a compilable body;
//! * `If`: the condition folds statically, is taint-`Const`, and is
//!   effect-free (the live arm is inlined, the branch stat bulk-counted);
//! * `Assign`: always (values stay data-dependent; only control must be
//!   static).
//!
//! "Effect-free" means evaluation can never bump `undefined_reads`,
//! `div_by_zero`, `wrapped_accesses` or issue memory traffic — otherwise
//! skipping the evaluation would diverge from the interpreter's statistics.

use crate::cost::{
    binop_latency, intrinsic_latency, parallel_cycles, unary_latency, LaneCost, INVOKE_OVERHEAD,
};
use crate::exec::{
    apply_binop, apply_intrinsic, eval_graph_expr, group_overhead, setup_program, unroll_factor,
    CycleReport, ExecStats, InvocationProfile, SimConfig, SimError,
};
use llmulator_ir::{
    analyze_program_bounds, analyze_program_taint, AdaptivityClass, Arg, BinOp, Dependence, Expr,
    HardwareParams, Ident, InputData, Intrinsic, LValue, Operator, OperatorBounds, OperatorTaint,
    Program, Stmt, Tensor, UnOp,
};
use std::collections::{BTreeSet, HashMap};

/// What the region compiler managed to prove about a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileSummary {
    /// Invocations in the graph (compiled or not).
    pub invocations: usize,
    /// Input-independent regions whose cost retires in O(1).
    pub regions: usize,
    /// Source statements covered by those regions.
    pub region_stmts: usize,
    /// Source statements across all invoked operator bodies.
    pub total_stmts: usize,
    /// Whole-program adaptivity class from the taint analysis.
    pub class: AdaptivityClass,
}

impl CompileSummary {
    /// Fraction of statements retired through compiled regions.
    pub fn coverage(&self) -> f64 {
        if self.total_stmts == 0 {
            return 0.0;
        }
        self.region_stmts as f64 / self.total_stmts as f64
    }
}

/// A program lowered to slot-indexed nodes with pre-costed static regions.
pub struct CompiledProgram<'p> {
    program: &'p Program,
    plans: Vec<Result<InvPlan, SimError>>,
    summary: CompileSummary,
}

/// How one scalar slot starts each invocation (mirrors the interpreter's
/// frame-then-graph variable lookup order).
enum SlotInit {
    /// Never written before first read: reads count as `undefined_reads`.
    Undef,
    /// Falls through to the graph-level scalar binding.
    Graph(Ident),
    /// Bound by a scalar invocation argument, evaluated over graph scalars.
    Arg(Expr),
}

struct InvPlan {
    op: Ident,
    inits: Vec<SlotInit>,
    body: Vec<CNode>,
}

/// Expression with names resolved to slots/buffers and latencies baked in.
enum CExpr {
    Const(f64),
    Slot(usize),
    /// `buf` is `None` when the array name is not bound in the frame: the
    /// interpreter then skips index evaluation entirely and reads 0.
    Load {
        buf: Option<usize>,
        indices: Vec<CExpr>,
    },
    Binary {
        op: BinOp,
        lat: u64,
        lhs: Box<CExpr>,
        rhs: Box<CExpr>,
    },
    Unary {
        op: UnOp,
        lat: u64,
        operand: Box<CExpr>,
    },
    Call {
        func: Intrinsic,
        lat: u64,
        args: Vec<CExpr>,
    },
}

enum CDest {
    Slot(usize),
    Store {
        buf: Option<usize>,
        indices: Vec<CExpr>,
    },
}

/// Interpreted spine nodes: cost is accounted at runtime, exactly as the
/// step interpreter does.
enum CNode {
    Assign {
        dest: CDest,
        value: CExpr,
    },
    If {
        cond: CExpr,
        then_body: Vec<CNode>,
        else_body: Vec<CNode>,
    },
    For {
        var: usize,
        var_name: Ident,
        lo: CExpr,
        hi: CExpr,
        step: CExpr,
        factor: u64,
        overhead: u64,
        body: Vec<CNode>,
    },
    Region(Region),
}

/// Fast-path nodes inside a proven-static region: no cost bookkeeping, only
/// data effects.
enum FNode {
    Assign {
        dest: CDest,
        value: CExpr,
    },
    Loop {
        var: usize,
        lo: i64,
        step: i64,
        trips: u64,
        body: Vec<FNode>,
    },
}

struct Region {
    nodes: Vec<FNode>,
    delta: RegionCost,
}

/// Pre-computed per-entry cost of a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RegionCost {
    /// Straight-line lane contribution at the region's nesting level.
    lane: LaneCost,
    /// Already-folded nested-loop cycles.
    nested: u64,
    loads: u64,
    stores: u64,
    taken: u64,
    not_taken: u64,
    iters: u64,
}

impl RegionCost {
    fn seq(&mut self, o: RegionCost) {
        self.lane.sequential(o.lane);
        self.nested = self.nested.saturating_add(o.nested);
        self.loads = self.loads.saturating_add(o.loads);
        self.stores = self.stores.saturating_add(o.stores);
        self.taken = self.taken.saturating_add(o.taken);
        self.not_taken = self.not_taken.saturating_add(o.not_taken);
        self.iters = self.iters.saturating_add(o.iters);
    }
}

fn block_stmt_count(stmts: &[Stmt]) -> usize {
    stmts.iter().map(stmt_count).sum()
}

fn stmt_count(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::Assign { .. } => 0,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => block_stmt_count(then_body) + block_stmt_count(else_body),
        Stmt::For(l) => block_stmt_count(&l.body),
    }
}

/// True when evaluating `expr` can never touch the statistics counters:
/// no loads, no reads of possibly-undefined scalars, no division or modulo
/// with a possibly-zero divisor. Only such expressions may be skipped at
/// runtime without diverging from the interpreter.
fn pure_expr(expr: &Expr, defined: &BTreeSet<Ident>) -> bool {
    match expr {
        Expr::IntConst(_) | Expr::FloatConst(_) => true,
        Expr::Var(name) => defined.contains(name),
        Expr::Load { .. } => false,
        Expr::Binary { op, lhs, rhs } => {
            if matches!(op, BinOp::Div | BinOp::Mod) && !nonzero_const(rhs) {
                return false;
            }
            pure_expr(lhs, defined) && pure_expr(rhs, defined)
        }
        Expr::Unary { operand, .. } => pure_expr(operand, defined),
        Expr::Call { args, .. } => args.iter().all(|a| pure_expr(a, defined)),
    }
}

fn nonzero_const(expr: &Expr) -> bool {
    match expr {
        Expr::IntConst(v) => *v != 0,
        Expr::FloatConst(v) => *v != 0.0,
        _ => false,
    }
}

/// Accumulates the lane cost the interpreter would charge for evaluating `e`.
fn cexpr_lane(e: &CExpr, lane: &mut LaneCost) {
    match e {
        CExpr::Const(_) | CExpr::Slot(_) => {}
        CExpr::Load {
            buf: Some(_),
            indices,
        } => {
            for (k, idx) in indices.iter().enumerate() {
                cexpr_lane(idx, lane);
                lane.compute += u64::from(k > 0);
            }
            lane.loads += 1;
        }
        CExpr::Load { buf: None, .. } => lane.loads += 1,
        CExpr::Binary { lat, lhs, rhs, .. } => {
            cexpr_lane(lhs, lane);
            cexpr_lane(rhs, lane);
            lane.compute += lat;
        }
        CExpr::Unary { lat, operand, .. } => {
            cexpr_lane(operand, lane);
            lane.compute += lat;
        }
        CExpr::Call { lat, args, .. } => {
            for a in args {
                cexpr_lane(a, lane);
            }
            lane.compute += lat;
        }
    }
}

struct OpCompiler<'a> {
    hw: &'a HardwareParams,
    graph_params: &'a [Ident],
    bounds: Option<&'a OperatorBounds>,
    taint: Option<&'a OperatorTaint>,
    arrays: HashMap<Ident, usize>,
    slots: HashMap<Ident, usize>,
    inits: Vec<SlotInit>,
    next_id: usize,
    regions: usize,
    region_stmts: usize,
}

impl OpCompiler<'_> {
    fn slot_of(&mut self, name: &Ident) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.inits.len();
        let init = if self.graph_params.contains(name) {
            SlotInit::Graph(name.clone())
        } else {
            SlotInit::Undef
        };
        self.inits.push(init);
        self.slots.insert(name.clone(), s);
        s
    }

    fn compile_expr(&mut self, e: &Expr) -> CExpr {
        match e {
            Expr::IntConst(v) => CExpr::Const(*v as f64),
            Expr::FloatConst(v) => CExpr::Const(*v),
            Expr::Var(name) => CExpr::Slot(self.slot_of(name)),
            Expr::Load { array, indices } => match self.arrays.get(array).copied() {
                Some(buf) => CExpr::Load {
                    buf: Some(buf),
                    indices: indices.iter().map(|i| self.compile_expr(i)).collect(),
                },
                // Unknown array: the interpreter never evaluates the indices.
                None => CExpr::Load {
                    buf: None,
                    indices: Vec::new(),
                },
            },
            Expr::Binary { op, lhs, rhs } => CExpr::Binary {
                op: *op,
                lat: binop_latency(*op),
                lhs: Box::new(self.compile_expr(lhs)),
                rhs: Box::new(self.compile_expr(rhs)),
            },
            Expr::Unary { op, operand } => CExpr::Unary {
                op: *op,
                lat: unary_latency(),
                operand: Box::new(self.compile_expr(operand)),
            },
            Expr::Call { func, args } => CExpr::Call {
                func: *func,
                lat: intrinsic_latency(*func),
                args: args.iter().map(|a| self.compile_expr(a)).collect(),
            },
        }
    }

    fn compile_dest(
        &mut self,
        dest: &LValue,
        defined: &mut BTreeSet<Ident>,
        lane: &mut LaneCost,
    ) -> CDest {
        match dest {
            LValue::Var(name) => {
                let s = self.slot_of(name);
                defined.insert(name.clone());
                CDest::Slot(s)
            }
            LValue::Store { array, indices } => match self.arrays.get(array).copied() {
                Some(buf) => {
                    let idxs: Vec<CExpr> = indices.iter().map(|i| self.compile_expr(i)).collect();
                    for (k, idx) in idxs.iter().enumerate() {
                        cexpr_lane(idx, lane);
                        lane.compute += u64::from(k > 0);
                    }
                    lane.stores += 1;
                    CDest::Store {
                        buf: Some(buf),
                        indices: idxs,
                    }
                }
                None => {
                    lane.stores += 1;
                    CDest::Store {
                        buf: None,
                        indices: Vec::new(),
                    }
                }
            },
        }
    }

    /// Compiles a block into interpreted nodes, merging every maximal run of
    /// provably-static statements into a single [`Region`].
    fn compile_block(&mut self, stmts: &[Stmt], defined: &mut BTreeSet<Ident>) -> Vec<CNode> {
        let mut out = Vec::new();
        let mut acc_nodes: Vec<FNode> = Vec::new();
        let mut acc_rc = RegionCost::default();
        let mut acc_stmts = 0usize;
        for stmt in stmts {
            let save = self.next_id;
            let mut d = defined.clone();
            if let Some((nodes, rc)) = self.try_fast(stmt, &mut d) {
                *defined = d;
                acc_nodes.extend(nodes);
                acc_rc.seq(rc);
                acc_stmts += stmt_count(stmt);
            } else {
                self.next_id = save;
                self.flush(&mut out, &mut acc_nodes, &mut acc_rc, &mut acc_stmts);
                out.push(self.compile_slow(stmt, defined));
            }
        }
        self.flush(&mut out, &mut acc_nodes, &mut acc_rc, &mut acc_stmts);
        out
    }

    fn flush(
        &mut self,
        out: &mut Vec<CNode>,
        nodes: &mut Vec<FNode>,
        rc: &mut RegionCost,
        stmts: &mut usize,
    ) {
        if *stmts == 0 {
            return;
        }
        self.regions += 1;
        self.region_stmts += *stmts;
        out.push(CNode::Region(Region {
            nodes: std::mem::take(nodes),
            delta: *rc,
        }));
        *rc = RegionCost::default();
        *stmts = 0;
    }

    /// Tries to compile one statement for bulk retirement. `None` means it
    /// (or something it contains) needs the interpreter; the caller restores
    /// `next_id` and the defined set.
    fn try_fast(
        &mut self,
        stmt: &Stmt,
        defined: &mut BTreeSet<Ident>,
    ) -> Option<(Vec<FNode>, RegionCost)> {
        let sid = self.next_id;
        self.next_id += 1;
        match stmt {
            Stmt::Assign { dest, value } => {
                let v = self.compile_expr(value);
                let mut lane = LaneCost::default();
                cexpr_lane(&v, &mut lane);
                let dest_c = self.compile_dest(dest, defined, &mut lane);
                let rc = RegionCost {
                    lane,
                    loads: lane.loads,
                    stores: lane.stores,
                    ..RegionCost::default()
                };
                Some((
                    vec![FNode::Assign {
                        dest: dest_c,
                        value: v,
                    }],
                    rc,
                ))
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let fold = self.bounds?.cond_folds.get(&sid).copied().flatten()?;
                let tinfo = self.taint?.branch_conds.get(&sid)?;
                if tinfo.dep != Dependence::Const || !pure_expr(cond, defined) {
                    return None;
                }
                let cond_c = self.compile_expr(cond);
                let mut lane = LaneCost::default();
                cexpr_lane(&cond_c, &mut lane);
                lane.compute += 1; // branch decision
                let mut rc = RegionCost {
                    lane,
                    loads: lane.loads,
                    ..RegionCost::default()
                };
                let (nodes, brc) = if fold {
                    rc.taken = 1;
                    let r = self.fast_block(then_body, defined)?;
                    self.next_id += block_stmt_count(else_body);
                    r
                } else {
                    rc.not_taken = 1;
                    self.next_id += block_stmt_count(then_body);
                    self.fast_block(else_body, defined)?
                };
                rc.seq(brc);
                Some((nodes, rc))
            }
            Stmt::For(l) => {
                let b = self.bounds?;
                let tb = b.trips.get(&sid)?;
                if !tb.exact {
                    return None;
                }
                let trips = tb.min;
                let lc = b.loop_consts.get(&sid).copied()?;
                let tinfo = self.taint?.loop_bounds.get(&sid)?;
                if lc.step < 1
                    || tinfo.dep != Dependence::Const
                    || !pure_expr(&l.lo, defined)
                    || !pure_expr(&l.hi, defined)
                    || !pure_expr(&l.step, defined)
                {
                    return None;
                }
                let var_slot = self.slot_of(&l.var);
                let mut bdef = defined.clone();
                bdef.insert(l.var.clone());
                let (body_nodes, brc) = self.fast_block(&l.body, &mut bdef)?;
                if trips >= 1 {
                    *defined = bdef;
                }
                // Per-entry cost, replicating the interpreter's group-of-
                // `factor` lane retirement with identical per-iteration lanes.
                let lo_c = self.compile_expr(&l.lo);
                let step_c = self.compile_expr(&l.step);
                let mut bound_lane = LaneCost::default();
                cexpr_lane(&lo_c, &mut bound_lane);
                cexpr_lane(&step_c, &mut bound_lane);
                let factor = unroll_factor(l.pragma, self.hw);
                let overhead = group_overhead(l.pragma);
                let mut cycles = bound_lane.cycles(self.hw);
                if trips > 0 {
                    let full = trips / factor;
                    let rem = trips % factor;
                    if full > 0 {
                        let g = parallel_cycles(&vec![brc.lane; factor as usize], self.hw)
                            .saturating_add(overhead);
                        cycles = cycles.saturating_add(full.saturating_mul(g));
                    }
                    if rem > 0 {
                        let g = parallel_cycles(&vec![brc.lane; rem as usize], self.hw)
                            .saturating_add(overhead);
                        cycles = cycles.saturating_add(g);
                    }
                    cycles = cycles.saturating_add(trips.saturating_mul(brc.nested));
                }
                let rc = RegionCost {
                    lane: LaneCost::default(),
                    nested: cycles,
                    loads: bound_lane
                        .loads
                        .saturating_add(trips.saturating_mul(brc.loads)),
                    stores: trips.saturating_mul(brc.stores),
                    taken: trips.saturating_mul(brc.taken),
                    not_taken: trips.saturating_mul(brc.not_taken),
                    iters: trips.saturating_add(trips.saturating_mul(brc.iters)),
                };
                Some((
                    vec![FNode::Loop {
                        var: var_slot,
                        lo: lc.lo,
                        step: lc.step,
                        trips,
                        body: body_nodes,
                    }],
                    rc,
                ))
            }
        }
    }

    fn fast_block(
        &mut self,
        stmts: &[Stmt],
        defined: &mut BTreeSet<Ident>,
    ) -> Option<(Vec<FNode>, RegionCost)> {
        let mut nodes = Vec::new();
        let mut rc = RegionCost::default();
        for stmt in stmts {
            let (n, r) = self.try_fast(stmt, defined)?;
            nodes.extend(n);
            rc.seq(r);
        }
        Some((nodes, rc))
    }

    fn compile_slow(&mut self, stmt: &Stmt, defined: &mut BTreeSet<Ident>) -> CNode {
        self.next_id += 1;
        match stmt {
            Stmt::Assign { dest, value } => {
                let v = self.compile_expr(value);
                let mut lane = LaneCost::default();
                let d = self.compile_dest(dest, defined, &mut lane);
                CNode::Assign { dest: d, value: v }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.compile_expr(cond);
                let mut d1 = defined.clone();
                let then_c = self.compile_block(then_body, &mut d1);
                let mut d2 = defined.clone();
                let else_c = self.compile_block(else_body, &mut d2);
                // Only names assigned on both paths are definitely defined.
                *defined = d1.intersection(&d2).cloned().collect();
                CNode::If {
                    cond: c,
                    then_body: then_c,
                    else_body: else_c,
                }
            }
            Stmt::For(l) => {
                let var_slot = self.slot_of(&l.var);
                let lo = self.compile_expr(&l.lo);
                let hi = self.compile_expr(&l.hi);
                let step = self.compile_expr(&l.step);
                let mut d = defined.clone();
                d.insert(l.var.clone());
                let body = self.compile_block(&l.body, &mut d);
                // Zero trips are possible: body definitions don't escape.
                CNode::For {
                    var: var_slot,
                    var_name: l.var.clone(),
                    lo,
                    hi,
                    step,
                    factor: unroll_factor(l.pragma, self.hw),
                    overhead: group_overhead(l.pragma),
                    body,
                }
            }
        }
    }
}

/// Compiles a program for repeated execution via [`CompiledProgram::run`].
pub fn compile(program: &Program) -> CompiledProgram<'_> {
    let pb = analyze_program_bounds(program);
    let pt = analyze_program_taint(program);
    // Buffer name resolution is data-independent: positions in declaration
    // order, later duplicates winning (as the interpreter's map insert does).
    let mut buffer_index: HashMap<Ident, usize> = HashMap::new();
    for (i, decl) in program.graph.buffers.iter().enumerate() {
        buffer_index.insert(decl.name.clone(), i);
    }
    let mut plans = Vec::new();
    let mut regions = 0usize;
    let mut region_stmts = 0usize;
    let mut total_stmts = 0usize;
    // Both analyses skip invocations of unknown operators, so their reports
    // align with the known-op subsequence of the graph.
    let mut known = 0usize;
    for inv in &program.graph.invocations {
        match program.operator(&inv.op) {
            None => plans.push(Err(SimError::Unbound(inv.op.to_string()))),
            Some(op) => {
                let bounds = pb.invocations.get(known);
                let taint = pt.invocations.get(known);
                known += 1;
                total_stmts += block_stmt_count(&op.body);
                let mut c = OpCompiler {
                    hw: &program.hw,
                    graph_params: &program.graph.params,
                    bounds,
                    taint,
                    arrays: HashMap::new(),
                    slots: HashMap::new(),
                    inits: Vec::new(),
                    next_id: 0,
                    regions: 0,
                    region_stmts: 0,
                };
                plans.push(plan_invocation(op, &inv.args, &buffer_index, &mut c));
                regions += c.regions;
                region_stmts += c.region_stmts;
            }
        }
    }
    let summary = CompileSummary {
        invocations: program.graph.invocations.len(),
        regions,
        region_stmts,
        total_stmts,
        class: pt.class,
    };
    CompiledProgram {
        program,
        plans,
        summary,
    }
}

fn plan_invocation(
    op: &Operator,
    args: &[Arg],
    buffer_index: &HashMap<Ident, usize>,
    c: &mut OpCompiler<'_>,
) -> Result<InvPlan, SimError> {
    // Mirror `bind_frame` exactly: zip-order binding with buffer resolution
    // errors surfacing before the arity check.
    let mut defined: BTreeSet<Ident> = c.graph_params.iter().cloned().collect();
    for (param, arg) in op.params.iter().zip(args) {
        match arg {
            Arg::Buffer(name) => {
                let idx = *buffer_index
                    .get(name)
                    .ok_or_else(|| SimError::Unbound(name.to_string()))?;
                c.arrays.insert(param.name.clone(), idx);
            }
            Arg::Scalar(expr) => {
                let s = c.slot_of(&param.name);
                c.inits[s] = SlotInit::Arg(expr.clone());
                defined.insert(param.name.clone());
            }
        }
    }
    if op.params.len() != args.len() {
        return Err(SimError::Unbound(format!(
            "arity mismatch invoking `{}`",
            op.name
        )));
    }
    let body = c.compile_block(&op.body, &mut defined);
    Ok(InvPlan {
        op: op.name.clone(),
        inits: std::mem::take(&mut c.inits),
        body,
    })
}

impl CompiledProgram<'_> {
    /// What the compiler proved (region coverage, adaptivity class).
    pub fn summary(&self) -> &CompileSummary {
        &self.summary
    }

    /// Runs against input data with default limits.
    ///
    /// # Errors
    ///
    /// Identical to [`crate::simulate`] on the same program and data.
    pub fn run(&self, data: &InputData) -> Result<CycleReport, SimError> {
        self.run_with(data, SimConfig::default())
    }

    /// Runs against input data with explicit limits.
    ///
    /// # Errors
    ///
    /// Identical to [`crate::simulate_with`] on the same program and data.
    pub fn run_with(&self, data: &InputData, config: SimConfig) -> Result<CycleReport, SimError> {
        let state = setup_program(self.program, data)?;
        let mut buffers = state.buffers;
        let geom: Vec<(Vec<i64>, i64)> = buffers
            .iter()
            .map(|t| {
                let dims = t.shape().iter().map(|&d| d as i64).collect();
                (dims, t.len().max(1) as i64)
            })
            .collect();
        let mut stats = ExecStats::default();
        let mut invocations = Vec::new();
        let mut total: u64 = 0;
        for plan in &self.plans {
            let plan = plan.as_ref().map_err(Clone::clone)?;
            let slots: Vec<Option<f64>> = plan
                .inits
                .iter()
                .map(|init| match init {
                    SlotInit::Undef => None,
                    SlotInit::Graph(name) => state.graph_scalars.get(name).copied(),
                    SlotInit::Arg(expr) => Some(eval_graph_expr(expr, &state.graph_scalars)),
                })
                .collect();
            let mut runner = Runner {
                hw: self.program.hw,
                budget: config.max_iterations,
                buffers: &mut buffers,
                geom: &geom,
                stats: &mut stats,
                slots,
            };
            let body = runner.run_block(&plan.body)?;
            let cycles = body.lane.cycles(&self.program.hw) + body.nested + INVOKE_OVERHEAD;
            total += cycles;
            invocations.push(InvocationProfile {
                op: plan.op.clone(),
                cycles,
            });
        }
        let out: Vec<(Ident, Tensor)> = self
            .program
            .graph
            .buffers
            .iter()
            .map(|decl| {
                let idx = state.buffer_index[&decl.name];
                (decl.name.clone(), buffers[idx].clone())
            })
            .collect();
        Ok(CycleReport {
            total_cycles: total,
            invocations,
            stats,
            buffers: out,
        })
    }
}

/// Simulates through the region compiler with default limits.
///
/// # Errors
///
/// Identical to [`crate::simulate`] on the same inputs.
pub fn simulate_compiled(program: &Program, data: &InputData) -> Result<CycleReport, SimError> {
    compile(program).run(data)
}

/// Simulates through the region compiler with explicit limits.
///
/// # Errors
///
/// Identical to [`crate::simulate_with`] on the same inputs.
pub fn simulate_compiled_with(
    program: &Program,
    data: &InputData,
    config: SimConfig,
) -> Result<CycleReport, SimError> {
    compile(program).run_with(data, config)
}

#[derive(Debug, Clone, Copy, Default)]
struct RBody {
    lane: LaneCost,
    nested: u64,
}

impl RBody {
    fn seq(&mut self, o: RBody) {
        self.lane.sequential(o.lane);
        self.nested += o.nested;
    }
}

struct Runner<'a> {
    hw: HardwareParams,
    budget: u64,
    buffers: &'a mut Vec<Tensor>,
    /// Per-buffer `(dims, len.max(1))` snapshot: shapes never change during
    /// a run (`Tensor::set` writes in place), and fetching them from the
    /// tensor on every access would put a heap allocation in the hot loop.
    geom: &'a [(Vec<i64>, i64)],
    stats: &'a mut ExecStats,
    slots: Vec<Option<f64>>,
}

impl Runner<'_> {
    fn run_block(&mut self, nodes: &[CNode]) -> Result<RBody, SimError> {
        let mut cost = RBody::default();
        for n in nodes {
            cost.seq(self.run_node(n)?);
        }
        Ok(cost)
    }

    fn run_node(&mut self, node: &CNode) -> Result<RBody, SimError> {
        match node {
            CNode::Assign { dest, value } => {
                let mut lane = LaneCost::default();
                let v = self.ieval(value, &mut lane);
                self.iassign(dest, v, &mut lane);
                Ok(RBody { lane, nested: 0 })
            }
            CNode::If {
                cond,
                then_body,
                else_body,
            } => {
                let mut lane = LaneCost::default();
                let c = self.ieval(cond, &mut lane);
                lane.compute += 1; // branch decision
                let mut cost = RBody { lane, nested: 0 };
                if c != 0.0 {
                    self.stats.branches_taken += 1;
                    cost.seq(self.run_block(then_body)?);
                } else {
                    self.stats.branches_not_taken += 1;
                    cost.seq(self.run_block(else_body)?);
                }
                Ok(cost)
            }
            CNode::For {
                var,
                var_name,
                lo,
                hi,
                step,
                factor,
                overhead,
                body,
            } => {
                let hw = self.hw;
                let mut bound_lane = LaneCost::default();
                let lo_v = self.ieval(lo, &mut bound_lane) as i64;
                let step_v = self.ieval(step, &mut bound_lane) as i64;
                if step_v <= 0 {
                    return Err(SimError::BadStep(var_name.to_string()));
                }
                let mut cycles: u64 = bound_lane.cycles(&hw);
                let mut i = lo_v;
                let mut lanes: Vec<LaneCost> = Vec::with_capacity(*factor as usize);
                let mut nested: u64 = 0;
                loop {
                    // Re-evaluate the bound each iteration (C semantics).
                    let mut hi_lane = LaneCost::default();
                    let hi_v = self.ieval(hi, &mut hi_lane) as i64;
                    if i >= hi_v {
                        break;
                    }
                    self.stats.iterations += 1;
                    if self.stats.iterations > self.budget {
                        return Err(SimError::BudgetExceeded {
                            budget: self.budget,
                        });
                    }
                    self.slots[*var] = Some(i as f64);
                    let b = self.run_block(body)?;
                    lanes.push(b.lane);
                    nested += b.nested;
                    if lanes.len() as u64 == *factor {
                        cycles += parallel_cycles(&lanes, &hw) + overhead;
                        lanes.clear();
                    }
                    i += step_v;
                }
                if !lanes.is_empty() {
                    cycles += parallel_cycles(&lanes, &hw) + overhead;
                }
                cycles += nested;
                Ok(RBody {
                    lane: LaneCost::default(),
                    nested: cycles,
                })
            }
            CNode::Region(r) => {
                if r.delta.iters > 0 {
                    self.stats.iterations = self.stats.iterations.saturating_add(r.delta.iters);
                    if self.stats.iterations > self.budget {
                        return Err(SimError::BudgetExceeded {
                            budget: self.budget,
                        });
                    }
                }
                for n in &r.nodes {
                    self.fexec(n);
                }
                self.stats.loads += r.delta.loads;
                self.stats.stores += r.delta.stores;
                self.stats.branches_taken += r.delta.taken;
                self.stats.branches_not_taken += r.delta.not_taken;
                Ok(RBody {
                    lane: r.delta.lane,
                    nested: r.delta.nested,
                })
            }
        }
    }

    // ---- interpreted path: full lane + stats accounting ----

    fn iflat(&mut self, buf: usize, indices: &[CExpr], lane: &mut LaneCost) -> usize {
        let mut flat: i64 = 0;
        for (k, idx) in indices.iter().enumerate() {
            let v = self.ieval(idx, lane) as i64;
            let dim = self.geom[buf].0.get(k).copied().unwrap_or(1);
            flat = flat * dim + v;
            // Index arithmetic is address-generation work.
            lane.compute += u64::from(k > 0);
        }
        if flat < 0 {
            self.stats.wrapped_accesses += 1;
            flat = flat.rem_euclid(self.geom[buf].1);
        }
        flat as usize
    }

    fn iassign(&mut self, dest: &CDest, v: f64, lane: &mut LaneCost) {
        match dest {
            CDest::Slot(s) => {
                self.slots[*s] = Some(v);
            }
            CDest::Store {
                buf: Some(buf),
                indices,
            } => {
                let idx = self.iflat(*buf, indices, lane);
                let wrapped = idx % self.geom[*buf].1 as usize;
                if wrapped != idx {
                    self.stats.wrapped_accesses += 1;
                }
                self.buffers[*buf].set(wrapped, v);
                lane.stores += 1;
                self.stats.stores += 1;
            }
            CDest::Store { buf: None, .. } => {
                lane.stores += 1;
                self.stats.stores += 1;
            }
        }
    }

    fn ieval(&mut self, e: &CExpr, lane: &mut LaneCost) -> f64 {
        match e {
            CExpr::Const(v) => *v,
            CExpr::Slot(s) => match self.slots[*s] {
                Some(v) => v,
                None => {
                    self.stats.undefined_reads += 1;
                    0.0
                }
            },
            CExpr::Load {
                buf: Some(buf),
                indices,
            } => {
                let idx = self.iflat(*buf, indices, lane);
                lane.loads += 1;
                self.stats.loads += 1;
                let wrapped = idx % self.geom[*buf].1 as usize;
                if wrapped != idx {
                    self.stats.wrapped_accesses += 1;
                }
                self.buffers[*buf].get(wrapped).unwrap_or(0.0)
            }
            CExpr::Load { buf: None, .. } => {
                lane.loads += 1;
                self.stats.loads += 1;
                self.stats.undefined_reads += 1;
                0.0
            }
            CExpr::Binary { op, lat, lhs, rhs } => {
                let a = self.ieval(lhs, lane);
                let b = self.ieval(rhs, lane);
                lane.compute += lat;
                apply_binop(*op, a, b, self.stats)
            }
            CExpr::Unary { op, lat, operand } => {
                let v = self.ieval(operand, lane);
                lane.compute += lat;
                match op {
                    UnOp::Neg => -v,
                    UnOp::Not => f64::from(v == 0.0),
                }
            }
            CExpr::Call { func, lat, args } => {
                let vals: Vec<f64> = args.iter().map(|a| self.ieval(a, lane)).collect();
                lane.compute += lat;
                apply_intrinsic(*func, &vals)
            }
        }
    }

    // ---- fast path: data effects only; loads/stores/branches/iterations
    // are bulk-retired from the region's pre-computed delta ----

    fn fexec(&mut self, node: &FNode) {
        match node {
            FNode::Assign { dest, value } => {
                let v = self.feval(value);
                self.fassign(dest, v);
            }
            FNode::Loop {
                var,
                lo,
                step,
                trips,
                body,
            } => {
                let mut i = *lo;
                for _ in 0..*trips {
                    self.slots[*var] = Some(i as f64);
                    for n in body {
                        self.fexec(n);
                    }
                    i = i.wrapping_add(*step);
                }
            }
        }
    }

    fn fflat(&mut self, buf: usize, indices: &[CExpr]) -> usize {
        let mut flat: i64 = 0;
        for (k, idx) in indices.iter().enumerate() {
            let v = self.feval(idx) as i64;
            let dim = self.geom[buf].0.get(k).copied().unwrap_or(1);
            flat = flat * dim + v;
        }
        if flat < 0 {
            self.stats.wrapped_accesses += 1;
            flat = flat.rem_euclid(self.geom[buf].1);
        }
        flat as usize
    }

    fn fassign(&mut self, dest: &CDest, v: f64) {
        match dest {
            CDest::Slot(s) => {
                self.slots[*s] = Some(v);
            }
            CDest::Store {
                buf: Some(buf),
                indices,
            } => {
                let idx = self.fflat(*buf, indices);
                let wrapped = idx % self.geom[*buf].1 as usize;
                if wrapped != idx {
                    self.stats.wrapped_accesses += 1;
                }
                self.buffers[*buf].set(wrapped, v);
            }
            CDest::Store { buf: None, .. } => {}
        }
    }

    fn feval(&mut self, e: &CExpr) -> f64 {
        match e {
            CExpr::Const(v) => *v,
            CExpr::Slot(s) => match self.slots[*s] {
                Some(v) => v,
                None => {
                    self.stats.undefined_reads += 1;
                    0.0
                }
            },
            CExpr::Load {
                buf: Some(buf),
                indices,
            } => {
                let idx = self.fflat(*buf, indices);
                let wrapped = idx % self.geom[*buf].1 as usize;
                if wrapped != idx {
                    self.stats.wrapped_accesses += 1;
                }
                self.buffers[*buf].get(wrapped).unwrap_or(0.0)
            }
            CExpr::Load { buf: None, .. } => {
                self.stats.undefined_reads += 1;
                0.0
            }
            CExpr::Binary { op, lhs, rhs, .. } => {
                let a = self.feval(lhs);
                let b = self.feval(rhs);
                apply_binop(*op, a, b, self.stats)
            }
            CExpr::Unary { op, operand, .. } => {
                let v = self.feval(operand);
                match op {
                    UnOp::Neg => -v,
                    UnOp::Not => f64::from(v == 0.0),
                }
            }
            CExpr::Call { func, args, .. } => {
                let vals: Vec<f64> = args.iter().map(|a| self.feval(a)).collect();
                apply_intrinsic(*func, &vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{simulate, simulate_with};
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Dim, ForLoop, LoopPragma};

    fn assert_identical(p: &Program, data: &InputData) {
        let interp = simulate(p, data);
        let comp = simulate_compiled(p, data);
        assert_eq!(interp, comp);
    }

    fn scale_op(n: usize) -> Program {
        let op = OperatorBuilder::new("scale")
            .array_param("a", [n])
            .array_param("b", [n])
            .loop_nest(&[("i", n)], |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) * Expr::int(2),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn static_loop_becomes_one_region() {
        let p = scale_op(16);
        let c = compile(&p);
        assert_eq!(c.summary().regions, 1);
        assert_eq!(c.summary().region_stmts, 2);
        assert_eq!(c.summary().total_stmts, 2);
        assert!(c.summary().class.is_static());
        assert!((c.summary().coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bit_identical_on_static_program() {
        let p = scale_op(16);
        let data = InputData::new().with("buf_a", Tensor::from_fn(vec![16], |i| i as f64));
        assert_identical(&p, &data);
    }

    #[test]
    fn bit_identical_on_dynamic_bound() {
        let op = OperatorBuilder::new("dyn")
            .array_param("a", [256])
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    idx[0].clone(),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let c = compile(&p);
        // The data-dependent loop itself stays interpreted; only its body
        // assign folds into a (re-entered) region.
        assert_eq!(c.summary().regions, 1);
        assert_eq!(c.summary().region_stmts, 1);
        assert!(!c.summary().class.is_static());
        // ...but execution still matches exactly, for several inputs.
        for n in [0i64, 1, 7, 64] {
            assert_identical(&p, &InputData::new().with("n", n));
        }
    }

    #[test]
    fn bit_identical_on_data_branch() {
        let op = OperatorBuilder::new("cond")
            .array_param("a", [32])
            .array_param("b", [32])
            .loop_nest(&[("i", 32)], |idx| {
                vec![Stmt::if_then(
                    Expr::binary(
                        BinOp::Gt,
                        Expr::load("a", vec![idx[0].clone()]),
                        Expr::int(0),
                    ),
                    vec![Stmt::assign(
                        LValue::store("b", vec![idx[0].clone()]),
                        Expr::call(Intrinsic::Exp, vec![Expr::load("a", vec![idx[0].clone()])]),
                    )],
                )]
            })
            .build();
        let p = Program::single_op(op);
        for bias in [-1.0, 0.0, 1.0] {
            let data = InputData::new().with(
                "buf_a",
                Tensor::from_fn(vec![32], |i| (i % 3) as f64 - 1.0 + bias),
            );
            assert_identical(&p, &data);
        }
    }

    #[test]
    fn bit_identical_with_unrolled_pragma() {
        let op = OperatorBuilder::new("unrolled")
            .array_param("a", [64])
            .array_param("b", [64])
            .loop_nest_with_pragma(&[("i", 64)], LoopPragma::Unroll(4), |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let c = compile(&p);
        assert_eq!(c.summary().regions, 1);
        let data = InputData::new().with("buf_a", Tensor::from_fn(vec![64], |i| (i % 5) as f64));
        assert_identical(&p, &data);
    }

    #[test]
    fn bit_identical_on_wrapping_and_div_by_zero() {
        // Negative store index (wraps) and a data-dependent division: the
        // region compiler must keep these statistics live on the fast path.
        let op = OperatorBuilder::new("weird")
            .array_param("a", [8])
            .array_param("b", [8])
            .loop_nest(&[("i", 8)], |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone() - Expr::int(3)]),
                    Expr::binary(
                        BinOp::Div,
                        Expr::int(10),
                        Expr::load("a", vec![idx[0].clone()]),
                    ),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let c = compile(&p);
        assert_eq!(c.summary().regions, 1, "control is static");
        let data = InputData::new().with("buf_a", Tensor::from_fn(vec![8], |i| (i % 2) as f64));
        assert_identical(&p, &data);
    }

    #[test]
    fn errors_match_interpreter() {
        // Unknown operator.
        let mut p = scale_op(8);
        p.graph.invocations[0].op = "missing_op".into();
        assert_eq!(
            simulate_compiled(&p, &InputData::new()),
            simulate(&p, &InputData::new())
        );
        // Unknown buffer argument.
        let mut p = scale_op(8);
        p.graph.invocations[0].args[0] = Arg::Buffer("missing_buf".into());
        assert_eq!(
            simulate_compiled(&p, &InputData::new()),
            simulate(&p, &InputData::new())
        );
        // Arity mismatch.
        let mut p = scale_op(8);
        p.graph.invocations[0].args.pop();
        assert_eq!(
            simulate_compiled(&p, &InputData::new()),
            simulate(&p, &InputData::new())
        );
        // Missing symbolic buffer dimension.
        let mut p = scale_op(8);
        p.graph.buffers[0].dims = vec![Dim::Sym("phantom".into())];
        assert_eq!(
            simulate_compiled(&p, &InputData::new()),
            simulate(&p, &InputData::new())
        );
        // Bad step.
        let mut p = scale_op(8);
        let body = std::mem::take(&mut p.operators[0].body);
        p.operators[0].body = vec![Stmt::For(ForLoop {
            var: "i".into(),
            lo: Expr::int(0),
            hi: Expr::int(8),
            step: Expr::int(0),
            pragma: LoopPragma::None,
            body,
        })];
        assert_eq!(
            simulate_compiled(&p, &InputData::new()),
            simulate(&p, &InputData::new())
        );
    }

    #[test]
    fn budget_errors_match_even_when_bulk_retired() {
        let p = scale_op(64); // 64 iterations, all in one region
        let tight = SimConfig { max_iterations: 63 };
        let loose = SimConfig { max_iterations: 64 };
        assert_eq!(
            simulate_compiled_with(&p, &InputData::new(), tight),
            simulate_with(&p, &InputData::new(), tight),
        );
        assert!(matches!(
            simulate_compiled_with(&p, &InputData::new(), tight),
            Err(SimError::BudgetExceeded { budget: 63 })
        ));
        assert_eq!(
            simulate_compiled_with(&p, &InputData::new(), loose),
            simulate_with(&p, &InputData::new(), loose),
        );
    }

    #[test]
    fn mixed_static_and_dynamic_nesting() {
        // Dynamic outer loop with a constant inner loop: the inner nest
        // compiles to a region re-entered per outer iteration.
        let op = OperatorBuilder::new("mixed")
            .array_param("a", [128])
            .scalar_param("n")
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                let i = idx[0].clone();
                vec![Stmt::For(ForLoop {
                    var: "j".into(),
                    lo: Expr::int(0),
                    hi: Expr::int(8),
                    step: Expr::int(1),
                    pragma: LoopPragma::None,
                    body: vec![Stmt::assign(
                        LValue::store("a", vec![i.clone() * Expr::int(8) + Expr::var("j")]),
                        Expr::var("j") + i.clone(),
                    )],
                })]
            })
            .build();
        let p = Program::single_op(op);
        let c = compile(&p);
        assert_eq!(c.summary().regions, 1);
        for n in [0i64, 3, 16] {
            assert_identical(&p, &InputData::new().with("n", n));
        }
    }

    #[test]
    fn zero_trip_region_loop_keeps_induction_var_undefined() {
        // for i in 0..0 {} then read `i`: the interpreter counts an
        // undefined read; the compiled engine must too.
        let op = OperatorBuilder::new("zero")
            .array_param("out", [1])
            .stmt(Stmt::For(ForLoop {
                var: "i".into(),
                lo: Expr::int(0),
                hi: Expr::int(0),
                step: Expr::int(1),
                pragma: LoopPragma::None,
                body: vec![],
            }))
            .stmt(Stmt::assign(
                LValue::store("out", vec![Expr::int(0)]),
                Expr::var("i"),
            ))
            .build();
        let p = Program::single_op(op);
        let interp = simulate(&p, &InputData::new()).expect("interprets");
        assert_eq!(interp.stats.undefined_reads, 1);
        assert_identical(&p, &InputData::new());
    }

    #[test]
    fn compiled_engine_drops_hash_lookups_from_hot_loop() {
        // Not a wall-clock benchmark (bench-runner measures that); just show
        // full coverage of a large Class-I nest while staying bit-identical.
        let op = OperatorBuilder::new("gemm")
            .array_param("a", [24, 24])
            .array_param("b", [24, 24])
            .array_param("c", [24, 24])
            .loop_nest(&[("i", 24), ("j", 24), ("k", 24)], |idx| {
                let (i, j, k) = (idx[0].clone(), idx[1].clone(), idx[2].clone());
                vec![Stmt::accumulate(
                    "c",
                    vec![i.clone(), j.clone()],
                    Expr::load("a", vec![i, k.clone()]) * Expr::load("b", vec![k, j]),
                )]
            })
            .build();
        let p = Program::single_op(op);
        let c = compile(&p);
        assert!((c.summary().coverage() - 1.0).abs() < 1e-12);
        let data = InputData::new()
            .with("buf_a", Tensor::from_fn(vec![24, 24], |i| (i % 7) as f64))
            .with("buf_b", Tensor::from_fn(vec![24, 24], |i| (i % 5) as f64));
        assert_identical(&p, &data);
    }
}
