//! Operation census: walks an operator body and counts datapath operations
//! per functional-unit kind, tracking loop weights (trip-count products) and
//! spatial replication (unroll/parallel factors).

use crate::cells::{binop_fu, intrinsic_fu, FuKind};
use llmulator_ir::{Expr, ForLoop, HardwareParams, LoopPragma, Operator, Stmt};
use std::collections::BTreeMap;

/// Default trip-count estimate for loops whose bounds are input-dependent.
/// (Static metrics must exist before inputs do; the simulator computes the
/// exact dynamic counts.)
pub const DYNAMIC_TRIP_ESTIMATE: u64 = 16;

/// Census of one operator body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpCensus {
    /// Per-kind *static* op instance counts after spatial replication
    /// (one entry per op site × its replication factor). Drives allocation.
    pub replicated_sites: BTreeMap<FuKind, u64>,
    /// Per-kind dynamic op counts weighted by estimated trip counts.
    /// Drives activity/energy estimation.
    pub weighted_ops: BTreeMap<FuKind, f64>,
    /// Loop counter register bits (sum of ceil(log2(bound)) per loop).
    pub counter_bits: u64,
    /// Number of loops in the body.
    pub loop_count: u64,
    /// Number of branch (if) sites.
    pub branch_count: u64,
    /// Estimated total innermost iterations (for utilization estimates).
    pub est_iterations: f64,
}

impl OpCensus {
    /// Total replicated op sites across kinds.
    pub fn total_sites(&self) -> u64 {
        self.replicated_sites.values().sum()
    }

    /// Total weighted dynamic ops across kinds.
    pub fn total_weighted(&self) -> f64 {
        self.weighted_ops.values().sum()
    }
}

/// Walks `op` and produces its census under `hw` (which caps replication).
pub fn census(op: &Operator, hw: &HardwareParams) -> OpCensus {
    let mut out = OpCensus::default();
    for stmt in &op.body {
        walk_stmt(stmt, 1.0, 1, hw, &mut out);
    }
    out
}

fn trip_estimate(l: &ForLoop) -> u64 {
    l.const_trip_count()
        .map(|t| t.max(0) as u64)
        .unwrap_or(DYNAMIC_TRIP_ESTIMATE)
}

fn replication_factor(l: &ForLoop, hw: &HardwareParams) -> u64 {
    let trip = trip_estimate(l).max(1);
    match l.pragma {
        LoopPragma::None => 1,
        LoopPragma::UnrollFull => trip.min(hw.max_unroll_width as u64),
        LoopPragma::Unroll(k) => (k as u64).min(trip).min(hw.max_unroll_width as u64).max(1),
        LoopPragma::ParallelFor => (hw.parallel_lanes as u64).min(trip).max(1),
    }
}

fn walk_stmt(stmt: &Stmt, weight: f64, repl: u64, hw: &HardwareParams, out: &mut OpCensus) {
    match stmt {
        Stmt::Assign { dest, value } => {
            count_expr(value, weight, repl, out);
            if dest.writes_memory() {
                bump(out, FuKind::Store, weight, repl);
                if let llmulator_ir::LValue::Store { indices, .. } = dest {
                    for idx in indices {
                        count_expr(idx, weight, repl, out);
                    }
                }
            }
        }
        Stmt::For(l) => {
            let trip = trip_estimate(l).max(1);
            let factor = replication_factor(l, hw);
            // Bound expressions are evaluated once per iteration of the
            // *enclosing* region.
            count_expr(&l.lo, weight, repl, out);
            count_expr(&l.hi, weight * trip as f64, repl, out);
            // Loop counter: one adder op per iteration plus its register.
            bump_weighted(out, FuKind::AddSub, weight * trip as f64);
            out.counter_bits += 64 - (trip.max(1)).leading_zeros() as u64;
            out.loop_count += 1;
            let inner_weight = weight * (trip as f64 / factor as f64).max(1.0);
            let inner_repl = repl.saturating_mul(factor);
            let mut innermost = true;
            for s in &l.body {
                if matches!(s, Stmt::For(_)) {
                    innermost = false;
                }
                walk_stmt(s, inner_weight, inner_repl, hw, out);
            }
            if innermost {
                out.est_iterations += inner_weight;
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            out.branch_count += 1;
            count_expr(cond, weight, repl, out);
            // Statically both sides exist in hardware; weight each by an
            // agnostic 50% activity estimate.
            for s in then_body {
                walk_stmt(s, weight * 0.5, repl, hw, out);
            }
            for s in else_body {
                walk_stmt(s, weight * 0.5, repl, hw, out);
            }
        }
    }
}

fn bump(out: &mut OpCensus, kind: FuKind, weight: f64, repl: u64) {
    *out.replicated_sites.entry(kind).or_insert(0) += repl;
    *out.weighted_ops.entry(kind).or_insert(0.0) += weight * repl as f64;
}

fn bump_weighted(out: &mut OpCensus, kind: FuKind, weight: f64) {
    out.replicated_sites.entry(kind).or_insert(0);
    *out.weighted_ops.entry(kind).or_insert(0.0) += weight;
}

fn count_expr(expr: &Expr, weight: f64, repl: u64, out: &mut OpCensus) {
    match expr {
        Expr::IntConst(_) | Expr::FloatConst(_) | Expr::Var(_) => {}
        Expr::Load { indices, .. } => {
            bump(out, FuKind::Load, weight, repl);
            for idx in indices {
                count_expr(idx, weight, repl, out);
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            bump(out, binop_fu(*op), weight, repl);
            count_expr(lhs, weight, repl, out);
            count_expr(rhs, weight, repl, out);
        }
        Expr::Unary { operand, .. } => {
            bump(out, FuKind::Logic, weight, repl);
            count_expr(operand, weight, repl, out);
        }
        Expr::Call { func, args } => {
            bump(out, intrinsic_fu(*func), weight, repl);
            for a in args {
                count_expr(a, weight, repl, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{LValue, LoopPragma};

    fn gemm(n: usize) -> Operator {
        OperatorBuilder::new("gemm")
            .array_param("a", [n, n])
            .array_param("b", [n, n])
            .array_param("c", [n, n])
            .loop_nest(&[("i", n), ("j", n), ("k", n)], |idx| {
                vec![Stmt::accumulate(
                    "c",
                    vec![idx[0].clone(), idx[1].clone()],
                    Expr::load("a", vec![idx[0].clone(), idx[2].clone()])
                        * Expr::load("b", vec![idx[2].clone(), idx[1].clone()]),
                )]
            })
            .build()
    }

    #[test]
    fn gemm_census_scales_cubically() {
        let hw = HardwareParams::default();
        let small = census(&gemm(4), &hw);
        let large = census(&gemm(8), &hw);
        let small_mul = small.weighted_ops[&FuKind::Mul];
        let large_mul = large.weighted_ops[&FuKind::Mul];
        assert!((large_mul / small_mul - 8.0).abs() < 0.01, "8x mul work");
    }

    #[test]
    fn unroll_replicates_sites_not_weight() {
        let hw = HardwareParams::default();
        let plain = OperatorBuilder::new("k")
            .array_param("a", [8])
            .loop_nest(&[("i", 8)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
                )]
            })
            .build();
        let unrolled = OperatorBuilder::new("k")
            .array_param("a", [8])
            .loop_nest_with_pragma(&[("i", 8)], LoopPragma::UnrollFull, |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) + Expr::int(1),
                )]
            })
            .build();
        let cp = census(&plain, &hw);
        let cu = census(&unrolled, &hw);
        assert_eq!(cp.replicated_sites[&FuKind::AddSub], 1);
        assert_eq!(cu.replicated_sites[&FuKind::AddSub], 8);
        // Total dynamic work is the same.
        let wp = cp.weighted_ops[&FuKind::AddSub];
        let wu = cu.weighted_ops[&FuKind::AddSub];
        assert!((wp - wu).abs() < 1e-9, "{wp} vs {wu}");
    }

    #[test]
    fn dynamic_bounds_use_estimate() {
        let hw = HardwareParams::default();
        let op = OperatorBuilder::new("dynloop")
            .scalar_param("n")
            .array_param("a", [64])
            .dyn_loop_nest(&[("i", Expr::var("n"))], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(0),
                )]
            })
            .build();
        let c = census(&op, &hw);
        assert!((c.est_iterations - DYNAMIC_TRIP_ESTIMATE as f64).abs() < 1e-9);
    }

    #[test]
    fn branches_halve_activity() {
        let hw = HardwareParams::default();
        let op = OperatorBuilder::new("branchy")
            .array_param("a", [4])
            .loop_nest(&[("i", 4)], |idx| {
                vec![Stmt::if_then(
                    Expr::binary(
                        llmulator_ir::BinOp::Gt,
                        Expr::load("a", vec![idx[0].clone()]),
                        Expr::int(0),
                    ),
                    vec![Stmt::assign(
                        LValue::store("a", vec![idx[0].clone()]),
                        Expr::int(1),
                    )],
                )]
            })
            .build();
        let c = census(&op, &hw);
        assert_eq!(c.branch_count, 1);
        // Store runs at 50% of the 4 iterations → weight 2.
        assert!((c.weighted_ops[&FuKind::Store] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counter_bits_grow_with_bounds() {
        let hw = HardwareParams::default();
        let small = census(&gemm(4), &hw);
        let large = census(&gemm(64), &hw);
        assert!(large.counter_bits > small.counter_bits);
    }
}
