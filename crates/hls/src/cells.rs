//! A SkyWater-130-class standard-cell/functional-unit library.
//!
//! Numbers are order-of-magnitude realistic for a 130 nm node; the cost-model
//! experiments only require that area/power/latency be a *deterministic,
//! monotone* function of program structure, not that they match a signed-off
//! PDK flow (see DESIGN.md, substitution table).

use serde::{Deserialize, Serialize};

/// The classes of datapath operation the binder allocates units for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuKind {
    /// 32-bit add/subtract.
    AddSub,
    /// 32-bit multiply.
    Mul,
    /// 32-bit divide / modulo.
    Div,
    /// 32-bit comparator (relational/equality).
    Cmp,
    /// Bitwise / logical ops.
    Logic,
    /// Transcendental math unit (exp, log, sqrt, sigmoid, tanh).
    Math,
    /// Memory load port.
    Load,
    /// Memory store port.
    Store,
}

impl FuKind {
    /// All unit kinds, in a stable order.
    pub fn all() -> &'static [FuKind] {
        &[
            FuKind::AddSub,
            FuKind::Mul,
            FuKind::Div,
            FuKind::Cmp,
            FuKind::Logic,
            FuKind::Math,
            FuKind::Load,
            FuKind::Store,
        ]
    }
}

/// Per-unit physical characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Cell area in square micrometres.
    pub area_um2: f64,
    /// Pipeline latency in cycles (compute units; memory latency comes from
    /// [`llmulator_ir::HardwareParams`]).
    pub latency: u32,
    /// Dynamic energy per operation in picojoules.
    pub energy_pj: f64,
}

/// Area of one D flip-flop in um².
pub const FF_AREA_UM2: f64 = 20.0;
/// Area of one word-level 2:1 multiplexer in um² (paper Fig. 8 reports
/// 584.5 um² for 59 muxes ≈ 9.9 um² each).
pub const MUX21_AREA_UM2: f64 = 9.9;
/// Leakage power per um² in mW (130 nm-class).
pub const LEAKAGE_MW_PER_UM2: f64 = 6.0e-6;
/// Area overhead of one memory-port controller in um².
pub const MEM_CTRL_AREA_UM2: f64 = 480.0;
/// Area overhead of the per-operator FSM controller in um² (plus state FFs).
pub const FSM_BASE_AREA_UM2: f64 = 260.0;

/// Looks up the spec for a functional-unit kind.
pub fn spec(kind: FuKind) -> CellSpec {
    match kind {
        FuKind::AddSub => CellSpec {
            area_um2: 140.0,
            latency: 1,
            energy_pj: 0.6,
        },
        FuKind::Mul => CellSpec {
            area_um2: 1650.0,
            latency: 3,
            energy_pj: 4.2,
        },
        FuKind::Div => CellSpec {
            area_um2: 3400.0,
            latency: 12,
            energy_pj: 11.0,
        },
        FuKind::Cmp => CellSpec {
            area_um2: 64.0,
            latency: 1,
            energy_pj: 0.3,
        },
        FuKind::Logic => CellSpec {
            area_um2: 36.0,
            latency: 1,
            energy_pj: 0.2,
        },
        FuKind::Math => CellSpec {
            area_um2: 5200.0,
            latency: 18,
            energy_pj: 16.0,
        },
        // Ports: the latency recorded here is the *issue* cost; the wait
        // cycles come from HardwareParams at simulation time.
        FuKind::Load => CellSpec {
            area_um2: 220.0,
            latency: 1,
            energy_pj: 7.5,
        },
        FuKind::Store => CellSpec {
            area_um2: 220.0,
            latency: 1,
            energy_pj: 8.5,
        },
    }
}

/// Maps an IR binary operator to the unit that executes it.
pub fn binop_fu(op: llmulator_ir::BinOp) -> FuKind {
    use llmulator_ir::BinOp::*;
    match op {
        Add | Sub => FuKind::AddSub,
        Mul => FuKind::Mul,
        Div | Mod => FuKind::Div,
        Lt | Le | Gt | Ge | Eq | Ne => FuKind::Cmp,
        And | Or => FuKind::Logic,
    }
}

/// Maps an IR intrinsic to the unit that executes it.
pub fn intrinsic_fu(func: llmulator_ir::Intrinsic) -> FuKind {
    use llmulator_ir::Intrinsic::*;
    match func {
        Exp | Sqrt | Sigmoid | Tanh | Log => FuKind::Math,
        Abs | Relu | Max | Min => FuKind::Cmp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_positive_spec() {
        for &k in FuKind::all() {
            let s = spec(k);
            assert!(s.area_um2 > 0.0, "{k:?} area");
            assert!(s.latency >= 1, "{k:?} latency");
            assert!(s.energy_pj > 0.0, "{k:?} energy");
        }
    }

    #[test]
    fn multiplier_dominates_adder() {
        assert!(spec(FuKind::Mul).area_um2 > spec(FuKind::AddSub).area_um2);
        assert!(spec(FuKind::Div).latency > spec(FuKind::Mul).latency);
    }

    #[test]
    fn binop_mapping_covers_all_operators() {
        for &op in llmulator_ir::BinOp::all() {
            let _ = binop_fu(op); // must not panic
        }
    }

    #[test]
    fn intrinsic_mapping_covers_all() {
        for &f in llmulator_ir::Intrinsic::all() {
            let _ = intrinsic_fu(f);
        }
    }
}
