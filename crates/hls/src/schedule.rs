//! Resource-constrained list scheduling and functional-unit binding.
//!
//! Given an operator census, the binder decides how many units of each kind
//! to allocate, how many word-level muxes sharing introduces, and how many
//! scheduling conflicts (ops that had to wait for a unit) occur — the same
//! RTL-level quantities the paper extracts from SiliconCompiler for its
//! `<think>` reasoning fragments.

use crate::cells::{spec, FuKind};
use crate::count::OpCensus;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Allocation/binding result for one operator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Binding {
    /// Units allocated per kind.
    pub allocated: BTreeMap<FuKind, u64>,
    /// Word-level 2:1 muxes inserted by sharing.
    pub mux21_count: u64,
    /// Scheduling conflicts (operations serialized on a shared unit).
    pub conflicts: u64,
    /// Number of FSM control steps for one innermost iteration.
    pub control_steps: u64,
}

impl Binding {
    /// Total allocated units across kinds.
    pub fn total_units(&self) -> u64 {
        self.allocated.values().sum()
    }
}

/// Sharing budget: at most this many op sites may share one unit before the
/// binder allocates another (keeps mux trees shallow, as real binders do).
const MAX_SHARING: u64 = 4;

/// Allocates units and estimates muxing/conflicts for a census.
pub fn bind(census: &OpCensus) -> Binding {
    let mut binding = Binding::default();
    let mut critical_latency: u64 = 0;
    for (&kind, &sites) in &census.replicated_sites {
        if sites == 0 {
            binding.allocated.insert(kind, 0);
            continue;
        }
        let latency = spec(kind).latency as u64;
        // Expensive units are shared harder; cheap ones replicated freely.
        let sharing = match kind {
            FuKind::Div | FuKind::Math => MAX_SHARING,
            FuKind::Mul => MAX_SHARING.min(3),
            FuKind::Load | FuKind::Store => 2,
            _ => 1,
        };
        let units = sites.div_ceil(sharing).max(1);
        let shared_ops = sites.saturating_sub(units);
        // Every extra op bound to a unit adds one 2:1 mux per operand port
        // (2 ports) plus one at the result bus.
        binding.mux21_count += shared_ops * 3;
        binding.conflicts += shared_ops * latency;
        binding.allocated.insert(kind, units);
        critical_latency = critical_latency.max(latency + shared_ops);
    }
    // Control steps per innermost iteration: issue every site over its units
    // plus the deepest unit latency.
    let issue_steps: u64 = census
        .replicated_sites
        .iter()
        .map(|(&kind, &sites)| {
            let units = binding.allocated.get(&kind).copied().unwrap_or(1).max(1);
            sites.div_ceil(units)
        })
        .max()
        .unwrap_or(1);
    binding.control_steps = (issue_steps + critical_latency).max(1);
    binding
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census_with(sites: &[(FuKind, u64)]) -> OpCensus {
        let mut c = OpCensus::default();
        for &(kind, n) in sites {
            c.replicated_sites.insert(kind, n);
            c.weighted_ops.insert(kind, n as f64);
        }
        c
    }

    #[test]
    fn single_site_needs_no_mux() {
        let b = bind(&census_with(&[(FuKind::AddSub, 1)]));
        assert_eq!(b.allocated[&FuKind::AddSub], 1);
        assert_eq!(b.mux21_count, 0);
        assert_eq!(b.conflicts, 0);
    }

    #[test]
    fn sharing_inserts_muxes_and_conflicts() {
        let b = bind(&census_with(&[(FuKind::Mul, 6)]));
        assert_eq!(b.allocated[&FuKind::Mul], 2); // 6 sites / sharing 3
        assert_eq!(b.mux21_count, (6 - 2) * 3);
        assert!(b.conflicts > 0);
    }

    #[test]
    fn adders_are_not_shared() {
        let b = bind(&census_with(&[(FuKind::AddSub, 5)]));
        assert_eq!(b.allocated[&FuKind::AddSub], 5);
        assert_eq!(b.mux21_count, 0);
    }

    #[test]
    fn control_steps_grow_with_pressure() {
        let light = bind(&census_with(&[(FuKind::Load, 2)]));
        let heavy = bind(&census_with(&[(FuKind::Load, 16)]));
        assert!(heavy.control_steps > light.control_steps);
    }

    #[test]
    fn empty_census_binds_trivially() {
        let b = bind(&OpCensus::default());
        assert_eq!(b.total_units(), 0);
        assert_eq!(b.control_steps, 1);
    }
}
