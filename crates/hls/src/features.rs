//! RTL-level feature extraction — the `<think>` reasoning fragment.
//!
//! The paper (Sec. 6.2, Fig. 8/9) extracts compact RTL features with
//! SiliconCompiler (module counts, conflicts, estimated areas, mux counts)
//! and wraps them in a `<think>` tag so the predictor can reason over
//! intermediate compilation results without blowing up the context length.

use crate::cells::MUX21_AREA_UM2;
use crate::count::OpCensus;
use crate::metrics::StaticMetrics;
use crate::schedule::Binding;
use serde::{Deserialize, Serialize};

/// Compact RTL-level features for one operator or a whole program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RtlFeatures {
    /// Number of modules instantiated (units + controllers).
    pub modules_instantiated: u64,
    /// Number of performance conflicts found during binding.
    pub perf_conflicts: u64,
    /// Estimated resource area (um², rounded).
    pub est_resource_area: u64,
    /// Estimated area contributed by MUX21 cells (um²).
    pub mux21_area: f64,
    /// Number of allocated multiplexers.
    pub mux_count: u64,
}

impl RtlFeatures {
    /// Builds features from binder output.
    pub fn from_binding(
        census: &OpCensus,
        binding: &Binding,
        metrics: &StaticMetrics,
        array_param_count: usize,
    ) -> RtlFeatures {
        RtlFeatures {
            // units + FSM + one memory controller per array port
            modules_instantiated: binding.total_units() + 1 + array_param_count as u64,
            perf_conflicts: binding.conflicts + census.branch_count,
            est_resource_area: metrics.area_um2.round() as u64,
            mux21_area: binding.mux21_count as f64 * MUX21_AREA_UM2,
            mux_count: binding.mux21_count,
        }
    }

    /// Element-wise sum (aggregating operators into a program).
    pub fn add(&self, other: &RtlFeatures) -> RtlFeatures {
        RtlFeatures {
            modules_instantiated: self.modules_instantiated + other.modules_instantiated,
            perf_conflicts: self.perf_conflicts + other.perf_conflicts,
            est_resource_area: self.est_resource_area + other.est_resource_area,
            mux21_area: self.mux21_area + other.mux21_area,
            mux_count: self.mux_count + other.mux_count,
        }
    }

    /// Renders the `<think>` fragment in the paper's Fig. 8 format.
    pub fn render_think(&self) -> String {
        format!(
            "<think>\nNumber of modules instantiated: {}\nNumber of performance conflicts: {}\nEstimated resources area: {}\nEstimated area of MUX21: {:.1}\nNumber of allocated multiplexers: {}\n</think>",
            self.modules_instantiated,
            self.perf_conflicts,
            self.est_resource_area,
            self.mux21_area,
            self.mux_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_fragment_has_paper_fields() {
        let f = RtlFeatures {
            modules_instantiated: 81,
            perf_conflicts: 54,
            est_resource_area: 1399,
            mux21_area: 584.5,
            mux_count: 59,
        };
        let text = f.render_think();
        assert!(text.starts_with("<think>"));
        assert!(text.ends_with("</think>"));
        assert!(text.contains("Number of modules instantiated: 81"));
        assert!(text.contains("Number of performance conflicts: 54"));
        assert!(text.contains("Estimated resources area: 1399"));
        assert!(text.contains("Estimated area of MUX21: 584.5"));
        assert!(text.contains("Number of allocated multiplexers: 59"));
    }

    #[test]
    fn add_is_componentwise() {
        let a = RtlFeatures {
            modules_instantiated: 1,
            perf_conflicts: 2,
            est_resource_area: 3,
            mux21_area: 4.0,
            mux_count: 5,
        };
        let s = a.add(&a);
        assert_eq!(s.modules_instantiated, 2);
        assert_eq!(s.mux_count, 10);
        assert_eq!(s.mux21_area, 8.0);
    }
}
