//! Static ASIC metrics: area, flip-flop count and power.

use crate::cells::{
    spec, FuKind, FF_AREA_UM2, FSM_BASE_AREA_UM2, LEAKAGE_MW_PER_UM2, MEM_CTRL_AREA_UM2,
    MUX21_AREA_UM2,
};
use crate::count::OpCensus;
use crate::schedule::Binding;
use llmulator_ir::HardwareParams;
use serde::{Deserialize, Serialize};

/// The static half of the paper's `<Power, Area, Flip-Flop, Cycles>` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticMetrics {
    /// Total power in milliwatts (leakage + dynamic at estimated activity).
    pub power_mw: f64,
    /// Area in square micrometres.
    pub area_um2: f64,
    /// Flip-flop count.
    pub ff: u64,
}

impl StaticMetrics {
    /// Element-wise sum (used to aggregate operators into a program).
    pub fn add(&self, other: &StaticMetrics) -> StaticMetrics {
        StaticMetrics {
            power_mw: self.power_mw + other.power_mw,
            area_um2: self.area_um2 + other.area_um2,
            ff: self.ff + other.ff,
        }
    }
}

/// Computes the static metrics of one bound operator.
pub fn static_metrics(
    census: &OpCensus,
    binding: &Binding,
    array_param_count: usize,
    hw: &HardwareParams,
) -> StaticMetrics {
    // ---- area ----
    let mut area = FSM_BASE_AREA_UM2;
    for (&kind, &units) in &binding.allocated {
        area += units as f64 * spec(kind).area_um2;
    }
    area += binding.mux21_count as f64 * MUX21_AREA_UM2;
    area += array_param_count as f64 * MEM_CTRL_AREA_UM2;

    // ---- flip-flops ----
    // Output register per unit (32-bit), loop counters, FSM state register.
    let unit_regs: u64 = binding.total_units() * 32;
    let state_bits = 64 - binding.control_steps.max(1).leading_zeros() as u64;
    let ff = unit_regs + census.counter_bits + state_bits + census.branch_count * 2;
    area += ff as f64 * FF_AREA_UM2;

    // ---- power ----
    let leakage_mw = area * LEAKAGE_MW_PER_UM2;
    // Dynamic: total energy over the estimated execution window. The window
    // length is control_steps per innermost iteration times iterations.
    let window_cycles = (census.est_iterations * binding.control_steps as f64).max(1.0);
    let total_energy_pj: f64 = census
        .weighted_ops
        .iter()
        .map(|(&kind, &ops)| {
            let mem_scale = match kind {
                FuKind::Load => 1.0 + hw.mem_read_delay as f64 * 0.04,
                FuKind::Store => 1.0 + hw.mem_write_delay as f64 * 0.04,
                _ => 1.0,
            };
            ops * spec(kind).energy_pj * mem_scale
        })
        .sum();
    // pJ / (cycles × ns/cycle) = pJ/ns = mW.
    let dynamic_mw = total_energy_pj / (window_cycles * hw.clock_period_ns);
    // Clock-tree power scales with FF count.
    let clock_mw = ff as f64 * 0.0011 * (10.0 / hw.clock_period_ns);

    StaticMetrics {
        power_mw: leakage_mw + dynamic_mw + clock_mw,
        area_um2: area,
        ff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::census;
    use crate::schedule::bind;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, Stmt};

    fn metrics_for(n: usize, hw: &HardwareParams) -> StaticMetrics {
        let op = OperatorBuilder::new("gemm")
            .array_param("a", [n, n])
            .array_param("b", [n, n])
            .array_param("c", [n, n])
            .loop_nest(&[("i", n), ("j", n), ("k", n)], |idx| {
                vec![Stmt::accumulate(
                    "c",
                    vec![idx[0].clone(), idx[1].clone()],
                    Expr::load("a", vec![idx[0].clone(), idx[2].clone()])
                        * Expr::load("b", vec![idx[2].clone(), idx[1].clone()]),
                )]
            })
            .build();
        let c = census(&op, hw);
        let b = bind(&c);
        static_metrics(&c, &b, 3, hw)
    }

    #[test]
    fn metrics_are_positive() {
        let m = metrics_for(8, &HardwareParams::default());
        assert!(m.power_mw > 0.0);
        assert!(m.area_um2 > 0.0);
        assert!(m.ff > 0);
    }

    #[test]
    fn bigger_kernels_cost_more_power() {
        let hw = HardwareParams::default();
        let small = metrics_for(4, &hw);
        let large = metrics_for(32, &hw);
        assert!(large.power_mw > small.power_mw);
        assert!(large.ff >= small.ff);
    }

    #[test]
    fn memory_delay_raises_power() {
        let slow = metrics_for(8, &HardwareParams::default().with_mem_delay(20));
        let fast = metrics_for(8, &HardwareParams::default().with_mem_delay(2));
        assert!(slow.power_mw > fast.power_mw);
    }

    #[test]
    fn add_is_componentwise() {
        let a = StaticMetrics {
            power_mw: 1.0,
            area_um2: 2.0,
            ff: 3,
        };
        let b = StaticMetrics {
            power_mw: 0.5,
            area_um2: 1.5,
            ff: 4,
        };
        let s = a.add(&b);
        assert_eq!(s.power_mw, 1.5);
        assert_eq!(s.area_um2, 3.5);
        assert_eq!(s.ff, 7);
    }
}
