//! # llmulator-hls
//!
//! The HLS + physical-synthesis substrate of the LLMulator reproduction: the
//! role Bambu (HLS frontend), OpenROAD (physical synthesis) and
//! SiliconCompiler (feature extraction) play in the paper's profiling
//! pipeline.
//!
//! Given a [`Program`] and its hardware parameters:
//!
//! 1. [`count::census`] walks each operator counting datapath operations with
//!    loop weights and pragma-driven spatial replication,
//! 2. [`schedule::bind`] allocates functional units, inserts sharing muxes
//!    and counts scheduling conflicts,
//! 3. [`metrics::static_metrics`] converts the binding into
//!    `{power, area, flip-flops}` with a SkyWater-130-class cell library,
//! 4. [`features::RtlFeatures`] extracts the compact RTL features used by the
//!    `<think>` reasoning data format.
//!
//! ```
//! use llmulator_hls::compile;
//! use llmulator_ir::builder::OperatorBuilder;
//! use llmulator_ir::{Expr, Program, Stmt};
//!
//! let op = OperatorBuilder::new("axpy")
//!     .array_param("x", [32])
//!     .array_param("y", [32])
//!     .loop_nest(&[("i", 32)], |idx| {
//!         vec![Stmt::accumulate(
//!             "y",
//!             vec![idx[0].clone()],
//!             Expr::load("x", vec![idx[0].clone()]) * Expr::int(2),
//!         )]
//!     })
//!     .build();
//! let program = Program::single_op(op);
//! let report = compile(&program);
//! assert!(report.total.area_um2 > 0.0);
//! assert!(report.features.modules_instantiated > 0);
//! ```

pub mod cells;
pub mod count;
pub mod features;
pub mod metrics;
pub mod schedule;

pub use cells::{CellSpec, FuKind};
pub use count::OpCensus;
pub use features::RtlFeatures;
pub use metrics::StaticMetrics;
pub use schedule::Binding;

use llmulator_ir::{Ident, Program};
use serde::{Deserialize, Serialize};

/// Compilation result for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorReport {
    /// Operator name.
    pub name: Ident,
    /// Total replicated datapath op sites (census size).
    pub census_total_sites: u64,
    /// Binding decisions.
    pub binding: Binding,
    /// Static metrics for this operator's module.
    pub metrics: StaticMetrics,
    /// RTL features for this operator's module.
    pub features: RtlFeatures,
}

/// Compilation result for a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HlsReport {
    /// Per-operator reports, in definition order.
    pub operators: Vec<OperatorReport>,
    /// Program-level static metrics (sum over distinct operator modules).
    pub total: StaticMetrics,
    /// Program-level RTL features.
    pub features: RtlFeatures,
}

impl HlsReport {
    /// Looks up the report for an operator.
    pub fn operator(&self, name: &Ident) -> Option<&OperatorReport> {
        self.operators.iter().find(|r| &r.name == name)
    }
}

/// Compiles a program: every *distinct* operator becomes one hardware module
/// (multiple invocations share the module, as an HLS flow would).
pub fn compile(program: &Program) -> HlsReport {
    let hw = &program.hw;
    let mut operators = Vec::with_capacity(program.operators.len());
    let mut total = StaticMetrics::default();
    let mut features = RtlFeatures::default();
    for op in &program.operators {
        let census = count::census(op, hw);
        let binding = schedule::bind(&census);
        let arrays = op.array_params().len();
        let metrics = metrics::static_metrics(&census, &binding, arrays, hw);
        let feats = RtlFeatures::from_binding(&census, &binding, &metrics, arrays);
        total = total.add(&metrics);
        features = features.add(&feats);
        operators.push(OperatorReport {
            name: op.name.clone(),
            census_total_sites: census.total_sites(),
            binding,
            metrics,
            features: feats,
        });
    }
    HlsReport {
        operators,
        total,
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, LValue, LoopPragma, Stmt};

    fn simple_program(unroll: bool) -> Program {
        let pragma = if unroll {
            LoopPragma::UnrollFull
        } else {
            LoopPragma::None
        };
        let op = OperatorBuilder::new("scale")
            .array_param("a", [16])
            .array_param("b", [16])
            .loop_nest_with_pragma(&[("i", 16)], pragma, |idx| {
                vec![Stmt::assign(
                    LValue::store("b", vec![idx[0].clone()]),
                    Expr::load("a", vec![idx[0].clone()]) * Expr::int(3),
                )]
            })
            .build();
        Program::single_op(op)
    }

    #[test]
    fn compile_reports_every_operator() {
        let report = compile(&simple_program(false));
        assert_eq!(report.operators.len(), 1);
        assert!(report.operator(&"scale".into()).is_some());
        assert!(report.operator(&"missing".into()).is_none());
    }

    #[test]
    fn unrolling_trades_area_for_parallelism() {
        let plain = compile(&simple_program(false));
        let unrolled = compile(&simple_program(true));
        assert!(
            unrolled.total.area_um2 > plain.total.area_um2,
            "unrolled {} vs plain {}",
            unrolled.total.area_um2,
            plain.total.area_um2
        );
        assert!(unrolled.features.modules_instantiated > plain.features.modules_instantiated);
    }

    #[test]
    fn totals_are_sums_of_operators() {
        let report = compile(&simple_program(false));
        let sum: f64 = report.operators.iter().map(|o| o.metrics.area_um2).sum();
        assert!((report.total.area_um2 - sum).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = compile(&simple_program(true));
        let b = compile(&simple_program(true));
        assert_eq!(a, b);
    }
}
