//! Tape-based reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Graph`] is built per forward pass: every operation appends a node
//! carrying its output value and enough cached state for the backward sweep.
//! Parameters live outside the graph in a [`ParamStore`]; registering a
//! parameter with [`Graph::param`] records the mapping so
//! [`Graph::param_grads`] can hand the optimizer per-parameter gradients.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// Owns model parameters (and nothing else — optimizer state lives in the
/// optimizer).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(value);
        self.names.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Borrow of a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0]
    }

    /// Mutable borrow of a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0]
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across parameters.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Iterates over `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.params.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }
}

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    MatMulNt(NodeId, NodeId),
    Add(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    MulRow(NodeId, NodeId),
    MulElem(NodeId, NodeId),
    Scale(NodeId, f32),
    Relu(NodeId),
    SoftmaxRows(NodeId),
    LayerNormRows {
        input: NodeId,
        // cached per-row (mean, inv_std)
        stats: Vec<(f32, f32)>,
    },
    Gather {
        table: NodeId,
        ids: Vec<usize>,
    },
    MeanRows(NodeId),
    SliceCols {
        input: NodeId,
        start: usize,
    },
    ConcatCols(Vec<NodeId>),
    CrossEntropy {
        logits: NodeId,
        targets: Vec<usize>,
        probs: Matrix,
    },
    Sigmoid(NodeId),
    LogSigmoid(NodeId),
}

struct NodeData {
    value: Matrix,
    op: Op,
}

/// Adds `g` into a gradient slot (taking ownership on first write).
fn accum_slot(slot: &mut Option<Matrix>, g: Matrix) {
    match slot {
        Some(existing) => existing.add_assign(&g),
        None => *slot = Some(g),
    }
}

/// One forward pass's computation tape.
pub struct Graph {
    nodes: Vec<NodeData>,
    param_nodes: Vec<(ParamId, NodeId)>,
    grads: Vec<Option<Matrix>>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Graph {
        Graph {
            nodes: Vec::new(),
            param_nodes: Vec::new(),
            grads: Vec::new(),
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(NodeData { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Borrow of a node's forward value.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Registers a constant input (no gradient is needed, but one is still
    /// computed if requested).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Registers a parameter leaf, copying its current value from the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let node = self.push(store.get(id).clone(), Op::Leaf);
        self.param_nodes.push((id, node));
        node
    }

    /// `a × b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// `a × bᵀ` (attention-score shape) without materializing the transpose.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        self.push(v, Op::MatMulNt(a, b))
    }

    /// Element-wise `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b))
    }

    /// `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.scale(b, -1.0);
        self.add(a, nb)
    }

    /// Adds a `1×d` row to every row of `a` (bias add).
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let r = &self.nodes[row.0].value;
        assert_eq!(r.rows(), 1, "add_row takes a 1×d row");
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            for (x, &b) in v.row_mut(i).iter_mut().zip(r.row(0)) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Multiplies every row of `a` by a `1×d` row (layer-norm gain).
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let r = self.nodes[row.0].value.clone();
        assert_eq!(r.rows(), 1, "mul_row takes a 1×d row");
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            for (x, &b) in v.row_mut(i).iter_mut().zip(r.row(0)) {
                *x *= b;
            }
        }
        self.push(v, Op::MulRow(a, row))
    }

    /// Element-wise product.
    pub fn mul_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let bb = self.nodes[b.0].value.clone();
        let v = Matrix::from_fn(bb.rows(), bb.cols(), |r, c| {
            self.nodes[a.0].value.get(r, c) * bb.get(r, c)
        });
        self.push(v, Op::MulElem(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        v.softmax_rows_mut();
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization (no learned gain/bias; compose with
    /// [`Graph::mul_row`] and [`Graph::add_row`]).
    pub fn layer_norm_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a.0].value;
        let (rows, cols) = x.shape();
        let mut out = Matrix::zeros(rows, cols);
        let mut stats = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            stats.push((mean, inv_std));
            for (c, &v) in row.iter().enumerate() {
                out.set(r, c, (v - mean) * inv_std);
            }
        }
        self.push(out, Op::LayerNormRows { input: a, stats })
    }

    /// Gathers rows `ids` from a table (embedding lookup).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&mut self, table: NodeId, ids: &[usize]) -> NodeId {
        let t = &self.nodes[table.0].value;
        for &id in ids {
            assert!(id < t.rows(), "gather id {id} out of range {}", t.rows());
        }
        let cols = t.cols();
        let mut v = Matrix::zeros(ids.len(), cols);
        for (r, &id) in ids.iter().enumerate() {
            v.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(
            v,
            Op::Gather {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Mean over rows → `1×d`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a.0].value;
        let (rows, cols) = x.shape();
        let mut v = Matrix::zeros(1, cols);
        for r in 0..rows {
            for (c, &val) in x.row(r).iter().enumerate() {
                v.set(0, c, v.get(0, c) + val);
            }
        }
        v.scale_assign(1.0 / rows.max(1) as f32);
        self.push(v, Op::MeanRows(a))
    }

    /// Column slice `a[:, start..start+len]`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let x = &self.nodes[a.0].value;
        assert!(start + len <= x.cols(), "slice out of range");
        let v = Matrix::from_fn(x.rows(), len, |r, c| x.get(r, start + c));
        self.push(v, Op::SliceCols { input: a, start })
    }

    /// Concatenates matrices with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = Matrix::zeros(rows, total);
        let mut off = 0;
        for p in parts {
            let m = &self.nodes[p.0].value;
            assert_eq!(m.rows(), rows, "concat row mismatch");
            for r in 0..rows {
                v.row_mut(r)[off..off + m.cols()].copy_from_slice(m.row(r));
            }
            off += m.cols();
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Mean cross-entropy between row-wise logits and integer targets.
    /// Returns a `1×1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let x = &self.nodes[logits.0].value;
        assert_eq!(x.rows(), targets.len(), "one target per logit row");
        let mut probs = x.clone();
        probs.softmax_rows_mut();
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len().max(1) as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// The summed log-probability `Σ_r log softmax(logits)_r[target_r]` as a
    /// `1×1` node (used by DPO).
    pub fn log_prob(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let n = targets.len() as f32;
        let ce = self.cross_entropy(logits, targets);
        self.scale(ce, -n)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise `log σ(x)`, computed stably as `-softplus(-x)`.
    pub fn log_sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| {
            if x > 0.0 {
                -((-x).exp().ln_1p())
            } else {
                x - x.exp().ln_1p()
            }
        });
        self.push(v, Op::LogSigmoid(a))
    }

    /// Runs the backward sweep from a `1×1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "loss must be 1×1");
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        let nodes = &self.nodes;
        for i in (0..nodes.len()).rev() {
            // Every operand of node `i` has a smaller index (the tape is
            // append-only), so splitting the gradient vector at `i` lets the
            // upstream gradient be read while operand slots are written —
            // no per-node clones of the op or its cached values.
            let (lower, upper) = self.grads.split_at_mut(i);
            let Some(g) = upper[0].as_ref() else {
                continue;
            };
            match &nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(&nodes[b.0].value);
                    let gb = nodes[a.0].value.matmul_tn(g);
                    accum_slot(&mut lower[a.0], ga);
                    accum_slot(&mut lower[b.0], gb);
                }
                Op::MatMulNt(a, b) => {
                    // C = A Bᵀ ⇒ dA = G B, dB = Gᵀ A.
                    let ga = g.matmul(&nodes[b.0].value);
                    let gb = g.matmul_tn(&nodes[a.0].value);
                    accum_slot(&mut lower[a.0], ga);
                    accum_slot(&mut lower[b.0], gb);
                }
                Op::Add(a, b) => {
                    accum_slot(&mut lower[a.0], g.clone());
                    accum_slot(&mut lower[b.0], g.clone());
                }
                Op::AddRow(a, row) => {
                    let mut grow = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            grow.set(0, c, grow.get(0, c) + v);
                        }
                    }
                    accum_slot(&mut lower[a.0], g.clone());
                    accum_slot(&mut lower[row.0], grow);
                }
                Op::MulRow(a, row) => {
                    let rvals = &nodes[row.0].value;
                    let avals = &nodes[a.0].value;
                    let ga =
                        Matrix::from_fn(g.rows(), g.cols(), |r, c| g.get(r, c) * rvals.get(0, c));
                    let mut grow = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            grow.set(0, c, grow.get(0, c) + g.get(r, c) * avals.get(r, c));
                        }
                    }
                    accum_slot(&mut lower[a.0], ga);
                    accum_slot(&mut lower[row.0], grow);
                }
                Op::MulElem(a, b) => {
                    let bv = &nodes[b.0].value;
                    let av = &nodes[a.0].value;
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| g.get(r, c) * bv.get(r, c));
                    let gb = Matrix::from_fn(g.rows(), g.cols(), |r, c| g.get(r, c) * av.get(r, c));
                    accum_slot(&mut lower[a.0], ga);
                    accum_slot(&mut lower[b.0], gb);
                }
                Op::Scale(a, s) => {
                    let mut ga = g.clone();
                    ga.scale_assign(*s);
                    accum_slot(&mut lower[a.0], ga);
                }
                Op::Relu(a) => {
                    let x = &nodes[a.0].value;
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        if x.get(r, c) > 0.0 {
                            g.get(r, c)
                        } else {
                            0.0
                        }
                    });
                    accum_slot(&mut lower[a.0], ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &nodes[i].value;
                    let mut ga = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gv, &yv)| gv * yv)
                            .sum();
                        for c in 0..g.cols() {
                            ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accum_slot(&mut lower[a.0], ga);
                }
                Op::LayerNormRows { input, stats } => {
                    let y = &nodes[i].value;
                    let cols = g.cols() as f32;
                    let mut ga = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let (_mean, inv_std) = stats[r];
                        let g_mean: f32 = g.row(r).iter().sum::<f32>() / cols;
                        let gy_mean: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gv, &yv)| gv * yv)
                            .sum::<f32>()
                            / cols;
                        for c in 0..g.cols() {
                            let v = inv_std * (g.get(r, c) - g_mean - y.get(r, c) * gy_mean);
                            ga.set(r, c, v);
                        }
                    }
                    accum_slot(&mut lower[input.0], ga);
                }
                Op::Gather { table, ids } => {
                    let t = &nodes[table.0].value;
                    let mut gt = Matrix::zeros(t.rows(), t.cols());
                    for (r, &id) in ids.iter().enumerate() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            gt.set(id, c, gt.get(id, c) + v);
                        }
                    }
                    accum_slot(&mut lower[table.0], gt);
                }
                Op::MeanRows(a) => {
                    let rows = nodes[a.0].value.rows();
                    let inv = 1.0 / rows.max(1) as f32;
                    let ga = Matrix::from_fn(rows, g.cols(), |_, c| g.get(0, c) * inv);
                    accum_slot(&mut lower[a.0], ga);
                }
                Op::SliceCols { input, start } => {
                    let x = &nodes[input.0].value;
                    let mut ga = Matrix::zeros(x.rows(), x.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            ga.set(r, start + c, g.get(r, c));
                        }
                    }
                    accum_slot(&mut lower[input.0], ga);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let cols = nodes[p.0].value.cols();
                        let gp = Matrix::from_fn(g.rows(), cols, |r, c| g.get(r, off + c));
                        accum_slot(&mut lower[p.0], gp);
                        off += cols;
                    }
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let gs = g.get(0, 0) / targets.len().max(1) as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, t, gl.get(r, t) - 1.0);
                    }
                    gl.scale_assign(gs);
                    accum_slot(&mut lower[logits.0], gl);
                }
                Op::Sigmoid(a) => {
                    let y = &nodes[i].value;
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        let yv = y.get(r, c);
                        g.get(r, c) * yv * (1.0 - yv)
                    });
                    accum_slot(&mut lower[a.0], ga);
                }
                Op::LogSigmoid(a) => {
                    let x = &nodes[a.0].value;
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                        let s = 1.0 / (1.0 + x.get(r, c).exp());
                        g.get(r, c) * s
                    });
                    accum_slot(&mut lower[a.0], ga);
                }
            }
        }
    }

    /// Gradient of a node after [`Graph::backward`].
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Gradients of all registered parameters (missing grads are zeros).
    pub fn param_grads(&self, store: &ParamStore) -> Vec<(ParamId, Matrix)> {
        self.param_nodes
            .iter()
            .map(|&(pid, nid)| {
                let g = self.grad(nid).cloned().unwrap_or_else(|| {
                    let m = store.get(pid);
                    Matrix::zeros(m.rows(), m.cols())
                });
                (pid, g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a scalar function of one param.
    fn check_grad(
        build: impl Fn(&mut Graph, &ParamStore, ParamId) -> NodeId,
        init: Matrix,
        tol: f32,
    ) {
        let mut store = ParamStore::new();
        let pid = store.add("w", init);
        // Analytic gradient.
        let mut g = Graph::new();
        let loss = {
            let l = build(&mut g, &store, pid);
            assert_eq!(g.value(l).shape(), (1, 1));
            l
        };
        g.backward(loss);
        let analytic = g.param_grads(&store)[0].1.clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        let (rows, cols) = store.get(pid).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.get(pid).get(r, c);
                store.get_mut(pid).set(r, c, orig + eps);
                let mut gp = Graph::new();
                let lp = build(&mut gp, &store, pid);
                let fp = gp.value(lp).get(0, 0);
                store.get_mut(pid).set(r, c, orig - eps);
                let mut gm = Graph::new();
                let lm = build(&mut gm, &store, pid);
                let fm = gm.value(lm).get(0, 0);
                store.get_mut(pid).set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_check_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Matrix::randn(3, 4, 1.0, &mut rng);
        let init = Matrix::randn(4, 2, 0.5, &mut rng);
        check_grad(
            move |g, store, pid| {
                let w = g.param(store, pid);
                let xin = g.input(x.clone());
                let y = g.matmul(xin, w);
                let y = g.relu(y);
                let pooled = g.mean_rows(y);
                let sq = g.mul_elem(pooled, pooled);
                let col = g.mean_rows(sq); // 1×2 still — reduce to scalar:
                let t = g.slice_cols(col, 0, 1);
                let u = g.slice_cols(col, 1, 1);
                g.add(t, u)
            },
            init,
            2e-2,
        );
    }

    #[test]
    fn grad_check_softmax_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(8);
        let init = Matrix::randn(3, 5, 0.8, &mut rng);
        check_grad(
            |g, store, pid| {
                let logits = g.param(store, pid);
                g.cross_entropy(logits, &[1, 4, 0])
            },
            init,
            2e-2,
        );
    }

    #[test]
    fn grad_check_layernorm() {
        let mut rng = StdRng::seed_from_u64(9);
        let init = Matrix::randn(2, 6, 1.0, &mut rng);
        check_grad(
            |g, store, pid| {
                let x = g.param(store, pid);
                let y = g.layer_norm_rows(x);
                let sq = g.mul_elem(y, y);
                let m = g.mean_rows(sq);
                let mut acc = g.slice_cols(m, 0, 1);
                for c in 1..6 {
                    let s = g.slice_cols(m, c, 1);
                    acc = g.add(acc, s);
                }
                acc
            },
            init,
            5e-2,
        );
    }

    #[test]
    fn grad_check_gather_and_rows() {
        let mut rng = StdRng::seed_from_u64(10);
        let init = Matrix::randn(4, 3, 0.7, &mut rng);
        check_grad(
            |g, store, pid| {
                let table = g.param(store, pid);
                let e = g.gather(table, &[0, 2, 2, 1]);
                let pooled = g.mean_rows(e);
                let sq = g.mul_elem(pooled, pooled);
                let m = g.mean_rows(sq);
                g.slice_cols(m, 0, 1)
            },
            init,
            2e-2,
        );
    }

    #[test]
    fn grad_check_log_sigmoid() {
        let init = Matrix::from_vec(1, 1, vec![0.3]);
        check_grad(
            |g, store, pid| {
                let x = g.param(store, pid);
                let y = g.log_sigmoid(x);
                g.scale(y, -1.0)
            },
            init,
            1e-2,
        );
    }

    #[test]
    fn log_prob_is_negative_sum_ce() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]));
        let lp = g.log_prob(logits, &[0, 2]);
        let v = g.value(lp).get(0, 0);
        assert!(v < 0.0, "log prob must be negative, got {v}");
    }

    #[test]
    fn softmax_then_ce_decreases_with_training_signal() {
        // One gradient step moves probability toward the target.
        let mut store = ParamStore::new();
        let pid = store.add("logits", Matrix::zeros(1, 4));
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new();
            let l = g.param(store, pid);
            let loss = g.cross_entropy(l, &[2]);
            let v = g.value(loss).get(0, 0);
            g.backward(loss);
            (v, g.param_grads(store)[0].1.clone())
        };
        let (l0, grad) = loss_at(&store);
        for r in 0..1 {
            for c in 0..4 {
                let v = store.get(pid).get(r, c) - 0.5 * grad.get(r, c);
                store.get_mut(pid).set(r, c, v);
            }
        }
        let (l1, _) = loss_at(&store);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }

    #[test]
    fn concat_and_slice_are_inverses() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = g.input(Matrix::from_vec(2, 1, vec![5., 6.]));
        let cat = g.concat_cols(&[a, b]);
        assert_eq!(g.value(cat).shape(), (2, 3));
        let back = g.slice_cols(cat, 2, 1);
        assert_eq!(g.value(back).data(), &[5., 6.]);
    }

    #[test]
    fn param_store_bookkeeping() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(2, 2));
        let b = store.add("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 7);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.name(b), "b");
        assert!(!store.is_empty());
    }
}
