//! A minimal dense `f32` matrix with the operations the transformer needs.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix taking ownership of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must match dims");
        Matrix { rows, cols, data }
    }

    /// Gaussian-initialized matrix (mean 0, given standard deviation).
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
        // Box-Muller transform; rand 0.8 has no normal distribution built in.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            data.push(mag * (2.0 * std::f32::consts::PI * u2).cos() * std);
            if data.len() < rows * cols {
                data.push(mag * (2.0 * std::f32::consts::PI * u2).sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other` (ikj loop order for cache friendliness).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt {}x{} × ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn ({}x{})ᵀ × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns a copy with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Row-wise softmax (numerically stabilized), in place.
    pub fn softmax_rows_mut(&mut self) {
        let cols = self.cols;
        for r in 0..self.rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                // Fully-masked row: uniform fallback keeps grads finite.
                let inv = 1.0 / cols as f32;
                for v in row.iter_mut() {
                    *v = inv;
                }
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum.max(1e-12);
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        m.softmax_rows_mut();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let mut m = Matrix::from_vec(1, 4, vec![f32::NEG_INFINITY; 4]);
        m.softmax_rows_mut();
        for &v in m.row(0) {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn randn_has_roughly_unit_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::randn(50, 50, 1.0, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 2500.0;
        let var: f32 = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 2500.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.transpose().transpose(), m);
    }
}
