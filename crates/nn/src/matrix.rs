//! A minimal dense `f32` matrix with the operations the transformer needs.
//!
//! The production matmul kernels (`matmul_into` and friends) are
//! register-blocked for autovectorization but keep the *exact* per-element
//! floating-point accumulation order of the naive triple loops, so swapping
//! them in changes no result bit. The naive loops survive as `*_naive` test
//! oracles.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Numerically-stabilized softmax over one logit slice, in place.
///
/// A fully non-finite slice (every entry `-inf`/`NaN`) falls back to the
/// uniform distribution so downstream gradients stay finite.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    softmax_slice_with_max(row, max);
}

/// [`softmax_slice`] when the caller already tracked the row maximum (must
/// equal the sequential `f32::max` fold over the slice).
pub(crate) fn softmax_slice_with_max(row: &mut [f32], max: f32) {
    if !max.is_finite() {
        let inv = 1.0 / row.len() as f32;
        for v in row.iter_mut() {
            *v = inv;
        }
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum.max(1e-12);
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix taking ownership of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must match dims");
        Matrix { rows, cols, data }
    }

    /// Gaussian-initialized matrix (mean 0, given standard deviation).
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
        // Box-Muller transform; rand 0.8 has no normal distribution built in.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            data.push(mag * (2.0 * std::f32::consts::PI * u2).cos() * std);
            if data.len() < rows * cols {
                data.push(mag * (2.0 * std::f32::consts::PI * u2).sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place to `rows × cols`, zero-filled, reusing the existing
    /// allocation when its capacity suffices.
    pub(crate) fn resize_buf(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`Matrix::resize_buf`] without the zero-fill — only for kernels that
    /// assign (never accumulate into) every output element. Stale values may
    /// remain until overwritten.
    fn resize_buf_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self × other` (blocked kernel, fresh output).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × otherᵀ` (blocked kernel, fresh output).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `selfᵀ × other` (blocked kernel, fresh output).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `out = self × other`, allocation-free when `out` has capacity.
    ///
    /// Register-blocked ikj kernel: four output rows share each loaded `B`
    /// row, with the per-element accumulation still running over `k` in
    /// order, so results are bit-identical to [`Matrix::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, kdim, n) = (self.rows, self.cols, other.cols);
        out.resize_buf(m, n);
        let a = &self.data;
        let b = &other.data;
        let mut i = 0;
        while i + 4 <= m {
            let block = &mut out.data[i * n..(i + 4) * n];
            let (c0, rest) = block.split_at_mut(n);
            let (c1, rest) = rest.split_at_mut(n);
            let (c2, c3) = rest.split_at_mut(n);
            for kk in 0..kdim {
                let a0 = a[i * kdim + kk];
                let a1 = a[(i + 1) * kdim + kk];
                let a2 = a[(i + 2) * kdim + kk];
                let a3 = a[(i + 3) * kdim + kk];
                let br = &b[kk * n..kk * n + n];
                for (o0, (o1, (o2, (o3, &bv)))) in c0
                    .iter_mut()
                    .zip(c1.iter_mut().zip(c2.iter_mut().zip(c3.iter_mut().zip(br))))
                {
                    *o0 += a0 * bv;
                    *o1 += a1 * bv;
                    *o2 += a2 * bv;
                    *o3 += a3 * bv;
                }
            }
            i += 4;
        }
        while i < m {
            let cr = &mut out.data[i * n..(i + 1) * n];
            for kk in 0..kdim {
                let av = a[i * kdim + kk];
                let br = &b[kk * n..kk * n + n];
                for (o, &bv) in cr.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
            i += 1;
        }
    }

    /// `out = self × otherᵀ` without materializing the transpose,
    /// allocation-free when `out` has capacity.
    ///
    /// Four dot products run as independent accumulation chains (each still
    /// sequential over `k`), hiding FMA latency while staying bit-identical
    /// to [`Matrix::matmul_nt_naive`].
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt {}x{} × ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.rows);
        out.resize_buf_overwrite(m, n);
        for i in 0..m {
            let ar = self.row(i);
            let cr = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = other.row(j);
                let b1 = other.row(j + 1);
                let b2 = other.row(j + 2);
                let b3 = other.row(j + 3);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &av) in ar.iter().enumerate() {
                    s0 += av * b0[kk];
                    s1 += av * b1[kk];
                    s2 += av * b2[kk];
                    s3 += av * b3[kk];
                }
                cr[j] = s0;
                cr[j + 1] = s1;
                cr[j + 2] = s2;
                cr[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let br = other.row(j);
                let mut acc = 0.0f32;
                for (&av, &bv) in ar.iter().zip(br) {
                    acc += av * bv;
                }
                cr[j] = acc;
                j += 1;
            }
        }
    }

    /// `out = selfᵀ × other` without materializing the transpose,
    /// allocation-free when `out` has capacity.
    ///
    /// Four rank-1 updates are fused per pass over the output (left-to-right,
    /// preserving the per-element `k` accumulation order of
    /// [`Matrix::matmul_tn_naive`] bit-for-bit).
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn ({}x{})ᵀ × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (r, m, n) = (self.rows, self.cols, other.cols);
        out.resize_buf(m, n);
        let mut kk = 0;
        while kk + 4 <= r {
            let a0 = self.row(kk);
            let a1 = self.row(kk + 1);
            let a2 = self.row(kk + 2);
            let a3 = self.row(kk + 3);
            let b0 = other.row(kk);
            let b1 = other.row(kk + 1);
            let b2 = other.row(kk + 2);
            let b3 = other.row(kk + 3);
            for i in 0..m {
                let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
                let cr = &mut out.data[i * n..(i + 1) * n];
                for (j, o) in cr.iter_mut().enumerate() {
                    *o = *o + x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                }
            }
            kk += 4;
        }
        while kk < r {
            let ar = self.row(kk);
            let br = other.row(kk);
            for (i, &av) in ar.iter().enumerate() {
                let cr = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in cr.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
            kk += 1;
        }
    }

    /// Copies column block `off..off+width` of rows `lo..hi` into `out`
    /// (reshaped to `(hi-lo) × width`) — the batched head-slice gather the
    /// attention kernels use to materialize one sample's `q`/`v` columns
    /// out of a (possibly packed multi-sample) activation matrix.
    ///
    /// # Panics
    ///
    /// Panics if the row range or column block is out of bounds.
    pub fn gather_block_into(
        &self,
        lo: usize,
        hi: usize,
        off: usize,
        width: usize,
        out: &mut Matrix,
    ) {
        assert!(lo <= hi && hi <= self.rows, "gather_block_into rows");
        assert!(off + width <= self.cols, "gather_block_into cols");
        out.resize_buf_overwrite(hi - lo, width);
        for (dst, i) in (lo..hi).enumerate() {
            out.row_mut(dst)
                .copy_from_slice(&self.row(i)[off..off + width]);
        }
    }

    /// Inverse of [`Matrix::gather_block_into`]: writes `src`
    /// (`n × width`) into the column block starting at `off` of rows
    /// `lo..lo+n` — the batched head-output scatter.
    ///
    /// # Panics
    ///
    /// Panics if the row range or column block is out of bounds.
    pub fn scatter_block_from(&mut self, lo: usize, off: usize, src: &Matrix) {
        let width = src.cols;
        assert!(lo + src.rows <= self.rows, "scatter_block_from rows");
        assert!(off + width <= self.cols, "scatter_block_from cols");
        for i in 0..src.rows {
            self.row_mut(lo + i)[off..off + width].copy_from_slice(src.row(i));
        }
    }

    /// Mean of rows `lo..hi` written into `out` (length `cols`): rows are
    /// accumulated in index order and scaled by `1 / (hi-lo)` afterwards —
    /// the exact operation order of the encoder's mean pooling, applied to
    /// one sample's row block of a packed matrix. An empty range writes
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds or `out` has the wrong
    /// length.
    pub fn mean_rows_block_into(&self, lo: usize, hi: usize, out: &mut [f32]) {
        assert!(lo <= hi && hi <= self.rows, "mean_rows_block_into rows");
        assert_eq!(out.len(), self.cols, "mean_rows_block_into width");
        out.fill(0.0);
        for i in lo..hi {
            for (o, &sv) in out.iter_mut().zip(self.row(i)) {
                *o += sv;
            }
        }
        let inv = 1.0 / (hi - lo).max(1) as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }

    /// Allocated capacity of the backing buffer, in elements (used by the
    /// scratch arena's best-fit buffer selection).
    pub(crate) fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Naive ikj matrix product — retained as the test oracle (and perf
    /// baseline) for [`Matrix::matmul_into`].
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Naive `self × otherᵀ` — test oracle for [`Matrix::matmul_nt_into`].
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt {}x{} × ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Naive `selfᵀ × other` — test oracle for [`Matrix::matmul_tn_into`].
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn ({}x{})ᵀ × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Fused bias-add + ReLU: `self = max(self + bias, 0)` row-wise.
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is `1 × self.cols()`.
    pub fn bias_relu(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias_relu takes a 1×d row");
        assert_eq!(bias.cols, self.cols, "bias_relu width mismatch");
        let cols = self.cols;
        let brow = &bias.data[..cols];
        for chunk in self.data.chunks_mut(cols) {
            for (x, &b) in chunk.iter_mut().zip(brow) {
                *x = (*x + b).max(0.0);
            }
        }
    }

    /// `out = selfᵀ`, cache-blocked, allocation-free when `out` has capacity.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize_buf_overwrite(self.cols, self.rows);
        const TILE: usize = 16;
        let (rows, cols) = (self.rows, self.cols);
        for ib in (0..rows).step_by(TILE) {
            let iend = (ib + TILE).min(rows);
            for jb in (0..cols).step_by(TILE) {
                let jend = (jb + TILE).min(cols);
                for i in ib..iend {
                    for j in jb..jend {
                        out.data[j * rows + i] = self.data[i * cols + j];
                    }
                }
            }
        }
    }

    /// Transposed copy (blocked).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns a copy with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Row-wise softmax (numerically stabilized), in place.
    pub fn softmax_rows_mut(&mut self) {
        let cols = self.cols;
        for row in self.data.chunks_mut(cols) {
            softmax_slice(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        m.softmax_rows_mut();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let mut m = Matrix::from_vec(1, 4, vec![f32::NEG_INFINITY; 4]);
        m.softmax_rows_mut();
        for &v in m.row(0) {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn randn_has_roughly_unit_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::randn(50, 50, 1.0, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 2500.0;
        let var: f32 = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 2500.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_naive() {
        // Shapes straddle the 4-wide register blocking (tails included).
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 4), (9, 6, 10), (17, 33, 13)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b).data(),
                a.matmul_naive(&b).data(),
                "{m}x{k}x{n}"
            );
            let bt = Matrix::randn(n, k, 1.0, &mut rng);
            assert_eq!(
                a.matmul_nt(&bt).data(),
                a.matmul_nt_naive(&bt).data(),
                "nt {m}x{k}x{n}"
            );
            let at = Matrix::randn(k, m, 1.0, &mut rng);
            assert_eq!(
                at.matmul_tn(&b).data(),
                at.matmul_tn_naive(&b).data(),
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn gather_scatter_block_round_trips() {
        let mut rng = StdRng::seed_from_u64(31);
        let src = Matrix::randn(9, 12, 1.0, &mut rng);
        let mut block = Matrix::from_fn(2, 2, |_, _| f32::NAN); // stale reuse
        src.gather_block_into(3, 7, 4, 5, &mut block);
        assert_eq!(block.shape(), (4, 5));
        for i in 0..4 {
            assert_eq!(block.row(i), &src.row(3 + i)[4..9]);
        }
        let mut dst = Matrix::zeros(9, 12);
        dst.scatter_block_from(3, 4, &block);
        for i in 0..4 {
            assert_eq!(&dst.row(3 + i)[4..9], block.row(i));
            assert!(dst.row(3 + i)[..4].iter().all(|&v| v == 0.0));
        }
        // Empty range gathers an empty matrix.
        src.gather_block_into(5, 5, 0, 3, &mut block);
        assert_eq!(block.shape(), (0, 3));
    }

    #[test]
    fn mean_rows_block_matches_manual_pooling() {
        let mut rng = StdRng::seed_from_u64(32);
        let m = Matrix::randn(8, 6, 1.0, &mut rng);
        let mut out = vec![f32::NAN; 6];
        m.mean_rows_block_into(2, 7, &mut out);
        for (c, &o) in out.iter().enumerate() {
            // Same order: accumulate rows in index order, then scale.
            let mut acc = 0.0f32;
            for i in 2..7 {
                acc += m.get(i, c);
            }
            assert_eq!(o, acc * (1.0 / 5.0));
        }
        // Empty block → zeros (no division by zero).
        m.mean_rows_block_into(4, 4, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "gather_block_into cols")]
    fn gather_block_checks_bounds() {
        let m = Matrix::zeros(4, 4);
        let mut out = Matrix::zeros(0, 0);
        m.gather_block_into(0, 4, 2, 3, &mut out);
    }

    #[test]
    fn into_kernels_reuse_output_buffers() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Matrix::randn(5, 6, 1.0, &mut rng);
        let b = Matrix::randn(6, 7, 1.0, &mut rng);
        // A stale, wrongly-shaped output is reshaped and fully overwritten.
        let mut out = Matrix::from_fn(9, 9, |_, _| f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (5, 7));
        assert_eq!(out.data(), a.matmul_naive(&b).data());
    }

    #[test]
    fn bias_relu_matches_add_then_clamp() {
        let mut rng = StdRng::seed_from_u64(23);
        let x = Matrix::randn(4, 6, 1.0, &mut rng);
        let bias = Matrix::randn(1, 6, 1.0, &mut rng);
        let mut fused = x.clone();
        fused.bias_relu(&bias);
        for r in 0..4 {
            for c in 0..6 {
                let want = (x.get(r, c) + bias.get(0, c)).max(0.0);
                assert_eq!(fused.get(r, c), want);
            }
        }
    }

    #[test]
    fn softmax_slice_matches_row_softmax() {
        let mut m = Matrix::from_vec(1, 5, vec![0.3, -2.0, 1.5, 0.0, 4.0]);
        let mut row = m.row(0).to_vec();
        m.softmax_rows_mut();
        softmax_slice(&mut row);
        assert_eq!(m.row(0), &row[..]);
    }

    #[test]
    fn transpose_into_handles_tall_and_wide() {
        let mut rng = StdRng::seed_from_u64(24);
        for &(r, c) in &[(1, 37), (37, 1), (18, 23), (16, 16)] {
            let m = Matrix::randn(r, c, 1.0, &mut rng);
            let t = m.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i), m.get(i, j));
                }
            }
        }
    }
}
