//! Mini-batch training helpers: per-example tapes evaluated in parallel with
//! gradients summed on the main thread, plus the generic scoped-thread map
//! the batch-inference paths fan out with.

use crate::graph::{Graph, NodeId, ParamId, ParamStore};
use crate::matrix::Matrix;

/// Worker count to use when the caller has no preference: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, fanning out across up to `threads` scoped
/// threads. Results keep input order; `threads` is clamped to the item
/// count and a single thread short-circuits to a plain map.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    par_map_init(items, threads, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker state: `init` runs once on each worker
/// thread (e.g. to build a [`crate::Scratch`]) and the resulting state is
/// threaded through that worker's `f` calls.
pub fn par_map_init<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|piece| {
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    piece
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// Builds per-example losses in parallel across threads and returns the mean
/// loss plus summed parameter gradients.
///
/// `build` must construct the forward pass and return the `1×1` loss node for
/// one item. The parameter store is shared read-only across threads.
pub fn batch_grads<T: Sync>(
    store: &ParamStore,
    items: &[T],
    threads: usize,
    build: impl Fn(&mut Graph, &ParamStore, &T) -> NodeId + Sync,
) -> (f32, Vec<(ParamId, Matrix)>) {
    if items.is_empty() {
        return (0.0, Vec::new());
    }
    let threads = threads.clamp(1, items.len());
    let chunk = items.len().div_ceil(threads);
    let results: Vec<(f32, Vec<(ParamId, Matrix)>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in items.chunks(chunk) {
            let build = &build;
            handles.push(scope.spawn(move || {
                let mut loss_sum = 0.0f32;
                let mut grads: Option<Vec<(ParamId, Matrix)>> = None;
                for item in piece {
                    let mut g = Graph::new();
                    let loss = build(&mut g, store, item);
                    loss_sum += g.value(loss).get(0, 0);
                    g.backward(loss);
                    let bg = g.param_grads(store);
                    match &mut grads {
                        None => grads = Some(bg),
                        Some(acc) => {
                            for ((_, a), (_, b)) in acc.iter_mut().zip(bg) {
                                a.add_assign(&b);
                            }
                        }
                    }
                }
                (loss_sum, grads.unwrap_or_default())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("training worker panicked"))
            .collect()
    });

    let mut total_loss = 0.0f32;
    let mut acc: Option<Vec<(ParamId, Matrix)>> = None;
    for (loss, grads) in results {
        total_loss += loss;
        if grads.is_empty() {
            continue;
        }
        match &mut acc {
            None => acc = Some(grads),
            Some(a) => {
                for ((_, x), (_, y)) in a.iter_mut().zip(grads) {
                    x.add_assign(&y);
                }
            }
        }
    }
    let mut grads = acc.unwrap_or_default();
    let inv = 1.0 / items.len() as f32;
    for (_, g) in &mut grads {
        g.scale_assign(inv);
    }
    (total_loss * inv, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Matrix::from_vec(1, 2, vec![0.4, -0.2]));
        let items: Vec<usize> = vec![0, 1, 0, 1, 1, 0];
        let build = |g: &mut Graph, store: &ParamStore, item: &usize| {
            let w = g.param(store, pid);
            g.cross_entropy(w, &[*item])
        };
        let (l1, g1) = batch_grads(&store, &items, 1, build);
        let (l2, g2) = batch_grads(&store, &items, 3, build);
        assert!((l1 - l2).abs() < 1e-5);
        for ((_, a), (_, b)) in g1.iter().zip(&g2) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn empty_batch_is_harmless() {
        let store = ParamStore::new();
        let items: Vec<usize> = vec![];
        let (loss, grads) = batch_grads(&store, &items, 4, |g, _, _| g.input(Matrix::zeros(1, 1)));
        assert_eq!(loss, 0.0);
        assert!(grads.is_empty());
    }

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<i64> = (0..23).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 16, 64] {
            assert_eq!(par_map(&items, threads, |&x| x * x), expect, "{threads}");
        }
        assert!(par_map(&[] as &[i64], 4, |&x| x).is_empty());
        assert!(available_threads() >= 1);
    }

    #[test]
    fn gradients_are_batch_means() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Matrix::zeros(1, 2));
        let items = vec![0usize, 0];
        let (_, grads) = batch_grads(&store, &items, 1, |g, store, item| {
            let w = g.param(store, pid);
            g.cross_entropy(w, &[*item])
        });
        let single = {
            let mut g = Graph::new();
            let w = g.param(&store, pid);
            let l = g.cross_entropy(w, &[0]);
            g.backward(l);
            g.param_grads(&store)[0].1.clone()
        };
        for (a, b) in grads[0].1.data().iter().zip(single.data()) {
            assert!((a - b).abs() < 1e-6, "mean of identical items = item grad");
        }
    }
}
