//! Forward-only encoder inference with block-structured attention caching.
//!
//! This implements the paper's *dynamic prediction acceleration* (Sec. 5.3):
//! when only one segment of the input (e.g. a single operator, or the `data`
//! scalars) changes between predictions, attention blocks not touching the
//! changed tokens are served from cache and only the affected rows are
//! recomputed. The separation mask (Sec. 5.2) makes this effective: rows
//! that are masked off from the changed segment keep their outputs.
//!
//! Two production paths live here, both built on the blocked kernels in
//! [`crate::matrix`] and the [`Scratch`] arena so steady-state inference
//! allocates nothing:
//!
//! * [`forward`] — full-sequence forward pass (the hot path behind every
//!   prediction), bit-identical to the autodiff tape forward in
//!   [`Transformer::encode`];
//! * [`encode_cached`] — the incremental path recomputing only rows
//!   reachable (per mask) from changed tokens.
//!
//! [`encode_batch`] fans [`forward`] out across scoped threads for batch
//! workloads, and [`forward_packed`] adds batch-level kernel fusion on top:
//! a group of same-length sequences is packed into one activation matrix so
//! each per-layer projection runs as a single blocked GEMM for the whole
//! group (attention stays block-diagonal), bit-identical per sample to
//! [`forward`].

use crate::graph::ParamStore;
use crate::matrix::{softmax_slice, Matrix};
use crate::scratch::Scratch;
use crate::transformer::{clamp_token, Transformer};

/// Threshold below which a mask entry is considered "blocked".
const MASK_BLOCKED: f32 = -1e8;

/// Cached per-layer state.
#[derive(Debug, Clone)]
struct LayerCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    x_out: Matrix,
}

/// Cached encoder state for one token sequence.
#[derive(Debug, Clone)]
pub struct EncoderCache {
    tokens: Vec<u32>,
    x0: Matrix,
    layers: Vec<LayerCache>,
    /// Final per-token representations (`n × d`).
    pub seq: Matrix,
    /// Mean-pooled representation (`1 × d`).
    pub pooled: Matrix,
}

impl EncoderCache {
    /// The token sequence this cache was computed for.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }
}

/// Work accounting for one cached forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Attention/FFN rows actually recomputed (summed over layers).
    pub rows_computed: usize,
    /// Total rows had nothing been cached.
    pub rows_total: usize,
}

impl InferStats {
    /// Fraction of work skipped thanks to the cache (0 when nothing cached).
    pub fn savings(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            1.0 - self.rows_computed as f64 / self.rows_total as f64
        }
    }
}

/// `out = row × w` with a 4-way `k` unroll. Per output element the
/// accumulation still runs over `k` left-to-right, so results are
/// bit-identical to the naive axpy loop.
fn row_matmul_into(row: &[f32], w: &Matrix, out: &mut [f32]) {
    let n = w.cols();
    debug_assert_eq!(out.len(), n);
    out.fill(0.0);
    let mut kk = 0;
    while kk + 4 <= row.len() {
        let (a0, a1, a2, a3) = (row[kk], row[kk + 1], row[kk + 2], row[kk + 3]);
        let w0 = w.row(kk);
        let w1 = w.row(kk + 1);
        let w2 = w.row(kk + 2);
        let w3 = w.row(kk + 3);
        for (j, o) in out.iter_mut().enumerate() {
            *o = *o + a0 * w0[j] + a1 * w1[j] + a2 * w2[j] + a3 * w3[j];
        }
        kk += 4;
    }
    while kk < row.len() {
        let av = row[kk];
        let wr = w.row(kk);
        for (o, &bv) in out.iter_mut().zip(wr) {
            *o += av * bv;
        }
        kk += 1;
    }
}

/// `out = layer_norm(row) * gain + bias` (same op order as the tape's
/// `layer_norm_rows` → `mul_row` → `add_row` chain).
fn layer_norm_row_into(row: &[f32], gain: &Matrix, bias: &Matrix, out: &mut [f32]) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
    let inv = 1.0 / (var + 1e-5).sqrt();
    for (((o, &v), &g), &b) in out.iter_mut().zip(row).zip(gain.row(0)).zip(bias.row(0)) {
        *o = (v - mean) * inv * g + b;
    }
}

/// Row-wise layer norm with learned gain/bias over a whole matrix.
fn layer_norm_into(x: &Matrix, gain: &Matrix, bias: &Matrix, out: &mut Matrix) {
    debug_assert_eq!(x.shape(), out.shape());
    for i in 0..x.rows() {
        layer_norm_row_into(x.row(i), gain, bias, out.row_mut(i));
    }
}

/// One attention head over column block `off..off+hd`: fills `scores` with
/// the softmaxed (scaled, masked) attention weights and writes the weighted
/// values into `cat`'s column block. `vh`/`head_out` are `n × hd` scratch
/// matrices.
#[allow(clippy::too_many_arguments)]
fn attention_head(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: Option<&Matrix>,
    off: usize,
    hd: usize,
    scale: f32,
    scores: &mut Matrix,
    vh: &mut Matrix,
    head_out: &mut Matrix,
    cat: &mut Matrix,
) {
    let n = q.rows();
    for i in 0..n {
        let qr = &q.row(i)[off..off + hd];
        let sr = scores.row_mut(i);
        // A plain zip dot beats a multi-row unroll at head dimension ≤ 16:
        // the iterator pair carries no bounds checks and the compiler fully
        // unrolls the short inner loop. Scale/mask are fused into the same
        // pass ((dot·scale) + mask, the tape's association), tracking the
        // row maximum in `j` order exactly as the softmax fold would.
        let mut mx = f32::NEG_INFINITY;
        match mask {
            Some(m) => {
                for (j, s) in sr.iter_mut().enumerate() {
                    let kr = &k.row(j)[off..off + hd];
                    let mut acc = 0.0f32;
                    for (&qv, &kv) in qr.iter().zip(kr) {
                        acc += qv * kv;
                    }
                    let sv = acc * scale + m.get(i, j);
                    mx = mx.max(sv);
                    *s = sv;
                }
            }
            None => {
                for (j, s) in sr.iter_mut().enumerate() {
                    let kr = &k.row(j)[off..off + hd];
                    let mut acc = 0.0f32;
                    for (&qv, &kv) in qr.iter().zip(kr) {
                        acc += qv * kv;
                    }
                    let sv = acc * scale;
                    mx = mx.max(sv);
                    *s = sv;
                }
            }
        }
        crate::matrix::softmax_slice_with_max(sr, mx);
    }
    // head_out = scores × v[:, off..off+hd] through the blocked kernel on a
    // materialized head slice — the same structure (and bit pattern) as the
    // tape's slice_cols + matmul.
    v.gather_block_into(0, n, off, hd, vh);
    scores.matmul_into(vh, head_out);
    cat.scatter_block_from(0, off, head_out);
}

/// [`attention_head`] for one sample's `n`-row block starting at `base`
/// inside a packed group matrix (mask-free, the batch-prediction case).
/// Identical per-element operations in identical order, so the block's
/// output is bit-identical to [`attention_head`] on that sample alone.
#[allow(clippy::too_many_arguments)]
fn attention_head_packed(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    base: usize,
    n: usize,
    off: usize,
    hd: usize,
    scale: f32,
    scores: &mut Matrix,
    vh: &mut Matrix,
    head_out: &mut Matrix,
    cat: &mut Matrix,
) {
    for i in 0..n {
        let qr = &q.row(base + i)[off..off + hd];
        let sr = scores.row_mut(i);
        let mut mx = f32::NEG_INFINITY;
        for (j, s) in sr.iter_mut().enumerate() {
            let kr = &k.row(base + j)[off..off + hd];
            let mut acc = 0.0f32;
            for (&qv, &kv) in qr.iter().zip(kr) {
                acc += qv * kv;
            }
            let sv = acc * scale;
            mx = mx.max(sv);
            *s = sv;
        }
        crate::matrix::softmax_slice_with_max(sr, mx);
    }
    v.gather_block_into(base, base + n, off, hd, vh);
    scores.matmul_into(vh, head_out);
    cat.scatter_block_from(base, off, head_out);
}

/// Full-sequence forward pass on the blocked kernels, allocation-free via
/// `scratch` — the production prediction path.
///
/// Computes the identical sequence of floating-point operations as the
/// autodiff tape forward ([`Transformer::encode`]) without building a tape,
/// so results are bit-identical while running several times faster.
///
/// Returns the `(seq, pooled)` pair (recycle them into `scratch` when done
/// to keep inference allocation-free).
///
/// # Panics
///
/// Panics if `mask` does not match the (truncated) token count.
pub fn forward(
    t: &Transformer,
    store: &ParamStore,
    tokens: &[u32],
    mask: Option<&Matrix>,
    scratch: &mut Scratch,
) -> (Matrix, Matrix) {
    let raw = t.raw();
    let cfg = raw.config;
    let n = tokens.len().min(cfg.max_len).max(1);
    let ids: Vec<usize> = tokens
        .iter()
        .take(n)
        .map(|&tok| clamp_token(tok, cfg.vocab_size))
        .collect();
    if let Some(m) = mask {
        assert_eq!(m.shape(), (ids.len(), ids.len()), "mask shape");
    }
    let n = ids.len();
    let d = cfg.d_model;
    let heads = cfg.n_heads;
    let hd = d / heads;

    // ---- embeddings ----
    let tok_table = store.get(raw.tok_embed);
    let pos_table = store.get(raw.pos_embed);
    let mut x = scratch.matrix(n, d);
    for (i, &id) in ids.iter().enumerate() {
        for ((o, &tv), &pv) in x
            .row_mut(i)
            .iter_mut()
            .zip(tok_table.row(id))
            .zip(pos_table.row(i))
        {
            *o = tv + pv;
        }
    }

    // ---- layers ----
    let mut ln = scratch.matrix(n, d);
    let mut q = scratch.matrix(n, d);
    let mut k = scratch.matrix(n, d);
    let mut v = scratch.matrix(n, d);
    let mut scores = scratch.matrix(n, n);
    let mut vh = scratch.matrix(n, hd);
    let mut head_out = scratch.matrix(n, hd);
    let mut cat = scratch.matrix(n, d);
    let mut proj = scratch.matrix(n, d);
    let mut hidden = scratch.matrix(n, cfg.d_ff);
    let mut ffn = scratch.matrix(n, d);
    let scale = 1.0 / (hd as f32).sqrt();
    for layer in raw.layers {
        let idsl = layer.ids();
        // Attention sub-block (pre-norm).
        layer_norm_into(
            &x,
            store.get(idsl.ln1_gain),
            store.get(idsl.ln1_bias),
            &mut ln,
        );
        ln.matmul_into(store.get(idsl.wq), &mut q);
        ln.matmul_into(store.get(idsl.wk), &mut k);
        ln.matmul_into(store.get(idsl.wv), &mut v);
        for h in 0..heads {
            attention_head(
                &q,
                &k,
                &v,
                mask,
                h * hd,
                hd,
                scale,
                &mut scores,
                &mut vh,
                &mut head_out,
                &mut cat,
            );
        }
        cat.matmul_into(store.get(idsl.wo), &mut proj);
        x.add_assign(&proj);
        // Feed-forward sub-block (pre-norm).
        layer_norm_into(
            &x,
            store.get(idsl.ln2_gain),
            store.get(idsl.ln2_bias),
            &mut ln,
        );
        ln.matmul_into(store.get(idsl.w1), &mut hidden);
        hidden.bias_relu(store.get(idsl.b1));
        hidden.matmul_into(store.get(idsl.w2), &mut ffn);
        let b2 = store.get(idsl.b2);
        for i in 0..n {
            for ((o, &hv), &bv) in x.row_mut(i).iter_mut().zip(ffn.row(i)).zip(b2.row(0)) {
                // Same association as the tape: x + (ffn + b2).
                *o += hv + bv;
            }
        }
    }

    // ---- final layer norm + pooling ----
    let mut seq = scratch.matrix(n, d);
    layer_norm_into(
        &x,
        store.get(raw.final_gain),
        store.get(raw.final_bias),
        &mut seq,
    );
    let mut pooled = scratch.matrix(1, d);
    seq.mean_rows_block_into(0, n, pooled.row_mut(0));
    for m in [x, ln, q, k, v, scores, vh, head_out, cat, proj, hidden, ffn] {
        scratch.recycle(m);
    }
    (seq, pooled)
}

/// Fused batch forward pass over a group of sequences sharing one effective
/// (truncated) length `n`: all `B` samples are packed row-wise into a single
/// `B·n × d` activation matrix and every per-layer projection (`q`/`k`/`v`,
/// `wo`, and both FFN matmuls) runs as **one** blocked GEMM for the whole
/// group instead of one per sample. Attention itself stays block-diagonal —
/// each sample's rows only attend within their own block — so no
/// cross-sample term is ever computed.
///
/// Returns `(seq, pooled)` where `seq` is the packed `B·n × d` per-token
/// matrix (sample `s` owns rows `s·n .. (s+1)·n`) and `pooled` is `B × d`
/// with one mean-pooled row per sample. Because every kernel preserves the
/// per-element accumulation order of the per-sample path, row `s` of
/// `pooled` (and sample `s`'s block of `seq`) is bit-identical to
/// [`forward`] on that sample alone, for any group size.
///
/// Recycle both returned matrices into `scratch` to keep steady-state
/// batch inference allocation-free.
///
/// # Panics
///
/// Panics if `seqs` is empty or the sequences' effective lengths
/// ([`crate::TransformerConfig::effective_len`]) differ — group mixed-length
/// batches with `llmulator`'s length partitioner first.
pub fn forward_packed(
    t: &Transformer,
    store: &ParamStore,
    seqs: &[&[u32]],
    scratch: &mut Scratch,
) -> (Matrix, Matrix) {
    let raw = t.raw();
    let cfg = raw.config;
    let b = seqs.len();
    assert!(b > 0, "forward_packed needs at least one sequence");
    let n = cfg.effective_len(seqs[0].len());
    let mut ids = Vec::with_capacity(b * n);
    for s in seqs {
        assert_eq!(
            cfg.effective_len(s.len()),
            n,
            "forward_packed requires equal effective lengths"
        );
        ids.extend(
            s.iter()
                .take(n)
                .map(|&tok| clamp_token(tok, cfg.vocab_size)),
        );
    }
    let rows = b * n;
    let d = cfg.d_model;
    let heads = cfg.n_heads;
    let hd = d / heads;

    // ---- embeddings (sample s owns rows s·n .. (s+1)·n) ----
    let tok_table = store.get(raw.tok_embed);
    let pos_table = store.get(raw.pos_embed);
    let mut x = scratch.matrix(rows, d);
    for (r, &id) in ids.iter().enumerate() {
        for ((o, &tv), &pv) in x
            .row_mut(r)
            .iter_mut()
            .zip(tok_table.row(id))
            .zip(pos_table.row(r % n))
        {
            *o = tv + pv;
        }
    }

    // ---- layers: one GEMM per projection for the whole group ----
    let mut ln = scratch.matrix(rows, d);
    let mut q = scratch.matrix(rows, d);
    let mut k = scratch.matrix(rows, d);
    let mut v = scratch.matrix(rows, d);
    let mut scores = scratch.matrix(n, n);
    let mut vh = scratch.matrix(n, hd);
    let mut head_out = scratch.matrix(n, hd);
    let mut cat = scratch.matrix(rows, d);
    let mut proj = scratch.matrix(rows, d);
    let mut hidden = scratch.matrix(rows, cfg.d_ff);
    let mut ffn = scratch.matrix(rows, d);
    let scale = 1.0 / (hd as f32).sqrt();
    for layer in raw.layers {
        let idsl = layer.ids();
        // Attention sub-block (pre-norm).
        layer_norm_into(
            &x,
            store.get(idsl.ln1_gain),
            store.get(idsl.ln1_bias),
            &mut ln,
        );
        ln.matmul_into(store.get(idsl.wq), &mut q);
        ln.matmul_into(store.get(idsl.wk), &mut k);
        ln.matmul_into(store.get(idsl.wv), &mut v);
        for s in 0..b {
            for h in 0..heads {
                attention_head_packed(
                    &q,
                    &k,
                    &v,
                    s * n,
                    n,
                    h * hd,
                    hd,
                    scale,
                    &mut scores,
                    &mut vh,
                    &mut head_out,
                    &mut cat,
                );
            }
        }
        cat.matmul_into(store.get(idsl.wo), &mut proj);
        x.add_assign(&proj);
        // Feed-forward sub-block (pre-norm).
        layer_norm_into(
            &x,
            store.get(idsl.ln2_gain),
            store.get(idsl.ln2_bias),
            &mut ln,
        );
        ln.matmul_into(store.get(idsl.w1), &mut hidden);
        hidden.bias_relu(store.get(idsl.b1));
        hidden.matmul_into(store.get(idsl.w2), &mut ffn);
        let b2 = store.get(idsl.b2);
        for i in 0..rows {
            for ((o, &hv), &bv) in x.row_mut(i).iter_mut().zip(ffn.row(i)).zip(b2.row(0)) {
                // Same association as the tape: x + (ffn + b2).
                *o += hv + bv;
            }
        }
    }

    // ---- final layer norm + per-sample pooling ----
    let mut seq = scratch.matrix(rows, d);
    layer_norm_into(
        &x,
        store.get(raw.final_gain),
        store.get(raw.final_bias),
        &mut seq,
    );
    let mut pooled = scratch.matrix(b, d);
    for s in 0..b {
        seq.mean_rows_block_into(s * n, (s + 1) * n, pooled.row_mut(s));
    }
    for m in [x, ln, q, k, v, scores, vh, head_out, cat, proj, hidden, ffn] {
        scratch.recycle(m);
    }
    (seq, pooled)
}

/// Encodes many token sequences in parallel with scoped threads (one
/// [`Scratch`] per worker). Results keep input order; `threads` is clamped
/// to the batch size.
pub fn encode_batch(
    t: &Transformer,
    store: &ParamStore,
    seqs: &[Vec<u32>],
    threads: usize,
) -> Vec<(Matrix, Matrix)> {
    crate::train::par_map_init(seqs, threads, Scratch::new, |scratch, s| {
        forward(t, store, s, None, scratch)
    })
}

/// The pre-optimization forward pass, kept verbatim as a test oracle and
/// perf baseline for [`forward`]: naive axpy row-matmuls with a fresh `Vec`
/// per row, element-wise `get()` accessors in the attention loops, and no
/// buffer reuse — the implementation every prediction ran through before the
/// blocked kernels and [`Scratch`] landed.
///
/// Produces bit-identical `(seq, pooled)` results to [`forward`].
///
/// # Panics
///
/// Panics if `mask` does not match the (truncated) token count.
pub fn encode_naive(
    t: &Transformer,
    store: &ParamStore,
    tokens: &[u32],
    mask: Option<&Matrix>,
) -> (Matrix, Matrix) {
    fn row_matmul(row: &[f32], w: &Matrix) -> Vec<f32> {
        let mut out = vec![0.0f32; w.cols()];
        for (k, &a) in row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &b) in out.iter_mut().zip(w.row(k)) {
                *o += a * b;
            }
        }
        out
    }
    fn layer_norm_row(row: &[f32], gain: &Matrix, bias: &Matrix) -> Vec<f32> {
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let inv = 1.0 / (var + 1e-5).sqrt();
        row.iter()
            .enumerate()
            .map(|(c, &v)| (v - mean) * inv * gain.get(0, c) + bias.get(0, c))
            .collect()
    }

    let raw = t.raw();
    let cfg = raw.config;
    let n = tokens.len().min(cfg.max_len).max(1);
    let ids: Vec<usize> = tokens
        .iter()
        .take(n)
        .map(|&tok| clamp_token(tok, cfg.vocab_size))
        .collect();
    if let Some(m) = mask {
        assert_eq!(m.shape(), (ids.len(), ids.len()), "mask shape");
    }
    let mut x = Matrix::zeros(ids.len(), cfg.d_model);
    let tok_table = store.get(raw.tok_embed);
    let pos_table = store.get(raw.pos_embed);
    for (i, &id) in ids.iter().enumerate() {
        for c in 0..cfg.d_model {
            x.set(i, c, tok_table.get(id, c) + pos_table.get(i, c));
        }
    }
    let heads = cfg.n_heads;
    let hd = cfg.d_model / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    for layer in raw.layers {
        let idsl = layer.ids();
        let (g1, b1) = (store.get(idsl.ln1_gain), store.get(idsl.ln1_bias));
        let (wq, wk, wv, wo) = (
            store.get(idsl.wq),
            store.get(idsl.wk),
            store.get(idsl.wv),
            store.get(idsl.wo),
        );
        let mut q = Matrix::zeros(ids.len(), cfg.d_model);
        let mut k = Matrix::zeros(ids.len(), cfg.d_model);
        let mut v = Matrix::zeros(ids.len(), cfg.d_model);
        for i in 0..ids.len() {
            let ln = layer_norm_row(x.row(i), g1, b1);
            q.row_mut(i).copy_from_slice(&row_matmul(&ln, wq));
            k.row_mut(i).copy_from_slice(&row_matmul(&ln, wk));
            v.row_mut(i).copy_from_slice(&row_matmul(&ln, wv));
        }
        let (g2, b2) = (store.get(idsl.ln2_gain), store.get(idsl.ln2_bias));
        let (w1, b1f) = (store.get(idsl.w1), store.get(idsl.b1));
        let (w2, b2f) = (store.get(idsl.w2), store.get(idsl.b2));
        let mut x_out = Matrix::zeros(ids.len(), cfg.d_model);
        for i in 0..ids.len() {
            let mut cat = vec![0.0f32; cfg.d_model];
            for h in 0..heads {
                let off = h * hd;
                let mut scores = vec![0.0f32; ids.len()];
                for (j, s) in scores.iter_mut().enumerate() {
                    let mut dot = 0.0f32;
                    for c in 0..hd {
                        dot += q.get(i, off + c) * k.get(j, off + c);
                    }
                    *s = match mask {
                        Some(m) => dot * scale + m.get(i, j),
                        None => dot * scale,
                    };
                }
                softmax_slice(&mut scores);
                for (j, &a) in scores.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    for c in 0..hd {
                        cat[off + c] += a * v.get(j, off + c);
                    }
                }
            }
            let proj = row_matmul(&cat, wo);
            let mut mid = vec![0.0f32; cfg.d_model];
            for c in 0..cfg.d_model {
                mid[c] = x.get(i, c) + proj[c];
            }
            let ln = layer_norm_row(&mid, g2, b2);
            let mut hrow = row_matmul(&ln, w1);
            for (c, hv) in hrow.iter_mut().enumerate() {
                *hv = (*hv + b1f.get(0, c)).max(0.0);
            }
            let out = row_matmul(&hrow, w2);
            for c in 0..cfg.d_model {
                x_out.set(i, c, mid[c] + (out[c] + b2f.get(0, c)));
            }
        }
        x = x_out;
    }
    let (fg, fb) = (store.get(raw.final_gain), store.get(raw.final_bias));
    let mut seq = Matrix::zeros(ids.len(), cfg.d_model);
    for i in 0..ids.len() {
        let ln = layer_norm_row(x.row(i), fg, fb);
        seq.row_mut(i).copy_from_slice(&ln);
    }
    let mut pooled = Matrix::zeros(1, cfg.d_model);
    for i in 0..ids.len() {
        for c in 0..cfg.d_model {
            pooled.set(0, c, pooled.get(0, c) + seq.get(i, c));
        }
    }
    pooled.scale_assign(1.0 / ids.len().max(1) as f32);
    (seq, pooled)
}

/// Encodes `tokens`, reusing `prev` where the mask proves rows unaffected.
///
/// `mask` is the same additive `n × n` matrix accepted by
/// [`Transformer::encode`]; `None` means full attention (every row depends on
/// every token, so any change invalidates everything).
///
/// Returns the new cache and the work statistics.
///
/// # Panics
///
/// Panics if `mask` does not match the (truncated) token count.
pub fn encode_cached(
    t: &Transformer,
    store: &ParamStore,
    tokens: &[u32],
    mask: Option<&Matrix>,
    prev: Option<&EncoderCache>,
) -> (EncoderCache, InferStats) {
    let mut scratch = Scratch::new();
    encode_cached_with(t, store, tokens, mask, prev, &mut scratch)
}

/// [`encode_cached`] with a caller-owned [`Scratch`], so repeated
/// incremental predictions (the design-space-exploration loop) allocate only
/// the returned cache matrices.
pub fn encode_cached_with(
    t: &Transformer,
    store: &ParamStore,
    tokens: &[u32],
    mask: Option<&Matrix>,
    prev: Option<&EncoderCache>,
    scratch: &mut Scratch,
) -> (EncoderCache, InferStats) {
    let raw = t.raw();
    let cfg = raw.config;
    let n = tokens.len().min(cfg.max_len).max(1);
    let ids: Vec<usize> = tokens
        .iter()
        .take(n)
        .map(|&tok| clamp_token(tok, cfg.vocab_size))
        .collect();
    if let Some(m) = mask {
        assert_eq!(m.shape(), (ids.len(), ids.len()), "mask shape");
    }

    // Which input rows changed relative to the cached run?
    let usable_prev =
        prev.filter(|p| p.tokens.len() == ids.len() && p.layers.len() == raw.layers.len());
    let mut changed: Vec<bool> = match usable_prev {
        Some(p) => ids
            .iter()
            .enumerate()
            .map(|(i, &id)| p.tokens[i] as usize != id)
            .collect(),
        None => vec![true; ids.len()],
    };

    let mut stats = InferStats {
        rows_computed: 0,
        rows_total: ids.len() * raw.layers.len(),
    };

    // ---- embeddings ----
    let tok_table = store.get(raw.tok_embed);
    let pos_table = store.get(raw.pos_embed);
    let mut x = match usable_prev {
        Some(p) => p.x0.clone(),
        None => Matrix::zeros(ids.len(), cfg.d_model),
    };
    for (i, &id) in ids.iter().enumerate() {
        if changed[i] {
            for ((o, &tv), &pv) in x
                .row_mut(i)
                .iter_mut()
                .zip(tok_table.row(id))
                .zip(pos_table.row(i))
            {
                *o = tv + pv;
            }
        }
    }
    let x0 = x.clone();

    // ---- row-loop scratch buffers (reused across rows and layers) ----
    let d = cfg.d_model;
    let mut ln_buf = scratch.row(d);
    let mut cat_buf = scratch.row(d);
    let mut mid_buf = scratch.row(d);
    let mut proj_buf = scratch.row(d);
    let mut hid_buf = scratch.row(cfg.d_ff);
    let mut out_buf = scratch.row(d);
    let mut score_buf = scratch.row(ids.len());
    let mut weight_buf = scratch.row(ids.len());

    // ---- layers ----
    let heads = cfg.n_heads;
    let hd = cfg.d_model / heads;
    let mut layer_caches = Vec::with_capacity(raw.layers.len());
    for (li, layer) in raw.layers.iter().enumerate() {
        let idsl = layer.ids();
        let prev_layer = usable_prev.map(|p| &p.layers[li]);
        let (g1, b1) = (store.get(idsl.ln1_gain), store.get(idsl.ln1_bias));
        let (wq, wk, wv, wo) = (
            store.get(idsl.wq),
            store.get(idsl.wk),
            store.get(idsl.wv),
            store.get(idsl.wo),
        );

        // q/k/v rows: recompute only changed rows.
        let (mut q, mut k, mut v) = match prev_layer {
            Some(pl) => (pl.q.clone(), pl.k.clone(), pl.v.clone()),
            None => (
                Matrix::zeros(ids.len(), cfg.d_model),
                Matrix::zeros(ids.len(), cfg.d_model),
                Matrix::zeros(ids.len(), cfg.d_model),
            ),
        };
        for i in 0..ids.len() {
            if changed[i] {
                layer_norm_row_into(x.row(i), g1, b1, &mut ln_buf);
                row_matmul_into(&ln_buf, wq, q.row_mut(i));
                row_matmul_into(&ln_buf, wk, k.row_mut(i));
                row_matmul_into(&ln_buf, wv, v.row_mut(i));
            }
        }

        // Which output rows change? Row i changes if its own input changed,
        // or it attends (per mask) to any changed row j.
        let mut changed_out = vec![false; ids.len()];
        for i in 0..ids.len() {
            if changed[i] {
                changed_out[i] = true;
                continue;
            }
            let attends_changed = (0..ids.len())
                .any(|j| changed[j] && mask.map(|m| m.get(i, j) > MASK_BLOCKED).unwrap_or(true));
            if attends_changed {
                changed_out[i] = true;
            }
        }

        let (g2, b2) = (store.get(idsl.ln2_gain), store.get(idsl.ln2_bias));
        let (w1, b1f) = (store.get(idsl.w1), store.get(idsl.b1));
        let (w2, b2f) = (store.get(idsl.w2), store.get(idsl.b2));
        let mut x_out = match prev_layer {
            Some(pl) => pl.x_out.clone(),
            None => Matrix::zeros(ids.len(), cfg.d_model),
        };
        let scale = 1.0 / (hd as f32).sqrt();
        for i in 0..ids.len() {
            if !changed_out[i] {
                continue;
            }
            stats.rows_computed += 1;
            // Multi-head attention for row i.
            cat_buf.fill(0.0);
            for h in 0..heads {
                let off = h * hd;
                // scores over all j
                score_buf.fill(f32::NEG_INFINITY);
                for (j, s) in score_buf.iter_mut().enumerate() {
                    let allowed = mask.map(|m| m.get(i, j) > MASK_BLOCKED).unwrap_or(true);
                    if !allowed {
                        continue;
                    }
                    let qr = &q.row(i)[off..off + hd];
                    let kr = &k.row(j)[off..off + hd];
                    let mut dot = 0.0f32;
                    for (&qv, &kv) in qr.iter().zip(kr) {
                        dot += qv * kv;
                    }
                    *s = dot * scale + mask.map(|m| m.get(i, j)).unwrap_or(0.0);
                }
                // softmax
                let max = score_buf.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                weight_buf.fill(0.0);
                if max.is_finite() {
                    for (w, &s) in weight_buf.iter_mut().zip(&score_buf) {
                        if s.is_finite() {
                            *w = (s - max).exp();
                            denom += *w;
                        }
                    }
                } else {
                    // fully-masked row: uniform (matches tape softmax)
                    weight_buf.iter_mut().for_each(|w| *w = 1.0);
                    denom = ids.len() as f32;
                }
                let inv = 1.0 / denom.max(1e-12);
                for (j, &w) in weight_buf.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let a = w * inv;
                    let vr = &v.row(j)[off..off + hd];
                    let cr = &mut cat_buf[off..off + hd];
                    for (o, &vv) in cr.iter_mut().zip(vr) {
                        *o += a * vv;
                    }
                }
            }
            row_matmul_into(&cat_buf, wo, &mut proj_buf);
            for ((m, &xv), &pv) in mid_buf.iter_mut().zip(x.row(i)).zip(&proj_buf) {
                *m = xv + pv;
            }
            // FFN
            layer_norm_row_into(&mid_buf, g2, b2, &mut ln_buf);
            row_matmul_into(&ln_buf, w1, &mut hid_buf);
            for (hv, &bv) in hid_buf.iter_mut().zip(b1f.row(0)) {
                *hv = (*hv + bv).max(0.0);
            }
            row_matmul_into(&hid_buf, w2, &mut out_buf);
            for (((o, &mv), &hv), &bv) in x_out
                .row_mut(i)
                .iter_mut()
                .zip(&mid_buf)
                .zip(&out_buf)
                .zip(b2f.row(0))
            {
                // Same association as the tape: mid + (ffn + b2).
                *o = mv + (hv + bv);
            }
        }
        layer_caches.push(LayerCache {
            q,
            k,
            v,
            x_out: x_out.clone(),
        });
        x = x_out;
        changed = changed_out;
    }

    // ---- final layer norm + pooling ----
    let (fg, fb) = (store.get(raw.final_gain), store.get(raw.final_bias));
    let mut seq = match usable_prev {
        Some(p) => p.seq.clone(),
        None => Matrix::zeros(ids.len(), cfg.d_model),
    };
    for i in 0..ids.len() {
        if changed[i] || usable_prev.is_none() {
            layer_norm_row_into(x.row(i), fg, fb, seq.row_mut(i));
        }
    }
    let mut pooled = Matrix::zeros(1, cfg.d_model);
    for i in 0..ids.len() {
        for (o, &sv) in pooled.row_mut(0).iter_mut().zip(seq.row(i)) {
            *o += sv;
        }
    }
    pooled.scale_assign(1.0 / ids.len().max(1) as f32);

    for buf in [
        ln_buf, cat_buf, mid_buf, proj_buf, hid_buf, out_buf, score_buf, weight_buf,
    ] {
        scratch.recycle_row(buf);
    }

    let cache = EncoderCache {
        tokens: ids.iter().map(|&i| i as u32).collect(),
        x0,
        layers: layer_caches,
        seq,
        pooled,
    };
    (cache, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::transformer::TransformerConfig;

    fn setup() -> (Transformer, ParamStore) {
        let mut store = ParamStore::new();
        let t = Transformer::new(TransformerConfig::tiny(64), &mut store, 11);
        (t, store)
    }

    fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn cached_full_pass_matches_tape_forward() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22, 7, 4];
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, None);
        let (cache, stats) = encode_cached(&t, &store, &tokens, None, None);
        assert!(close(g.value(out.seq), &cache.seq, 1e-4));
        assert!(close(g.value(out.pooled), &cache.pooled, 1e-4));
        assert_eq!(stats.rows_computed, stats.rows_total);
    }

    #[test]
    fn forward_is_bit_identical_to_tape() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22, 7, 4, 13, 2];
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, None);
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward(&t, &store, &tokens, None, &mut scratch);
        assert_eq!(g.value(out.seq).data(), seq.data(), "seq drifted");
        assert_eq!(g.value(out.pooled).data(), pooled.data(), "pooled drifted");
    }

    #[test]
    fn forward_is_bit_identical_to_tape_with_mask() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22, 7];
        let mask = Matrix::from_fn(5, 5, |r, c| if (r + c) % 3 == 0 { -1e9 } else { 0.0 });
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, Some(&mask));
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward(&t, &store, &tokens, Some(&mask), &mut scratch);
        assert_eq!(g.value(out.seq).data(), seq.data(), "masked seq drifted");
        assert_eq!(g.value(out.pooled).data(), pooled.data());
    }

    #[test]
    fn naive_oracle_is_bit_identical_to_forward() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22, 7, 4, 13];
        let mut scratch = Scratch::new();
        for mask in [
            None,
            Some(Matrix::from_fn(7, 7, |r, c| {
                if r.abs_diff(c) > 2 {
                    -1e9
                } else {
                    0.0
                }
            })),
        ] {
            let (ns, np) = encode_naive(&t, &store, &tokens, mask.as_ref());
            let (fs, fp) = forward(&t, &store, &tokens, mask.as_ref(), &mut scratch);
            assert_eq!(ns.data(), fs.data(), "seq (mask={})", mask.is_some());
            assert_eq!(np.data(), fp.data(), "pooled (mask={})", mask.is_some());
        }
    }

    #[test]
    fn fresh_cached_pass_is_bit_identical_to_forward() {
        let (t, store) = setup();
        let tokens = [5u32, 6, 7, 8, 9];
        let (cache, _) = encode_cached(&t, &store, &tokens, None, None);
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward(&t, &store, &tokens, None, &mut scratch);
        assert_eq!(cache.seq.data(), seq.data());
        assert_eq!(cache.pooled.data(), pooled.data());
    }

    #[test]
    fn forward_reuses_scratch_allocations() {
        let (t, store) = setup();
        let tokens = [1u32, 2, 3, 4];
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward(&t, &store, &tokens, None, &mut scratch);
        scratch.recycle(seq);
        scratch.recycle(pooled);
        let before = scratch.pooled();
        let (seq, pooled) = forward(&t, &store, &tokens, None, &mut scratch);
        scratch.recycle(seq);
        scratch.recycle(pooled);
        assert_eq!(scratch.pooled(), before, "steady state pools buffers");
    }

    #[test]
    fn encode_batch_matches_serial_forward_any_thread_count() {
        let (t, store) = setup();
        let seqs: Vec<Vec<u32>> = (0..7)
            .map(|i| (0..5).map(|j| (i * 5 + j) as u32 % 40).collect())
            .collect();
        let mut scratch = Scratch::new();
        let serial: Vec<_> = seqs
            .iter()
            .map(|s| forward(&t, &store, s, None, &mut scratch))
            .collect();
        for threads in [1, 2, 4, 9] {
            let batch = encode_batch(&t, &store, &seqs, threads);
            assert_eq!(batch.len(), serial.len());
            for ((bs, bp), (ss, sp)) in batch.iter().zip(&serial) {
                assert_eq!(bs.data(), ss.data(), "threads={threads}");
                assert_eq!(bp.data(), sp.data(), "threads={threads}");
            }
        }
    }

    #[test]
    fn forward_packed_is_bit_identical_to_forward_any_group_size() {
        let (t, store) = setup();
        let d = t.config().d_model;
        for group in [1usize, 2, 3, 5, 8] {
            let seqs: Vec<Vec<u32>> = (0..group)
                .map(|s| (0..6).map(|j| ((s * 13 + j * 7) % 40) as u32).collect())
                .collect();
            let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
            let mut scratch = Scratch::new();
            let (seq, pooled) = forward_packed(&t, &store, &refs, &mut scratch);
            assert_eq!(seq.shape(), (group * 6, d));
            assert_eq!(pooled.shape(), (group, d));
            for (s, tokens) in seqs.iter().enumerate() {
                let (es, ep) = forward(&t, &store, tokens, None, &mut scratch);
                for i in 0..6 {
                    assert_eq!(
                        seq.row(s * 6 + i),
                        es.row(i),
                        "group={group} sample={s} row={i}"
                    );
                }
                assert_eq!(pooled.row(s), ep.row(0), "group={group} sample={s}");
                scratch.recycle(es);
                scratch.recycle(ep);
            }
        }
    }

    #[test]
    fn forward_packed_truncates_like_forward() {
        let (t, store) = setup();
        // Longer than max_len (32): both sequences truncate to the same
        // effective length and pack together.
        let long: Vec<u32> = (0..50).map(|i| i % 30).collect();
        let longer: Vec<u32> = (0..64).map(|i| (i * 3) % 30).collect();
        let refs: Vec<&[u32]> = vec![&long, &longer];
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward_packed(&t, &store, &refs, &mut scratch);
        assert_eq!(seq.rows(), 2 * 32);
        for (s, tokens) in [&long, &longer].iter().enumerate() {
            let (_, ep) = forward(&t, &store, tokens, None, &mut scratch);
            assert_eq!(pooled.row(s), ep.row(0), "sample {s}");
        }
    }

    #[test]
    fn forward_packed_handles_empty_sequences() {
        let (t, store) = setup();
        let refs: Vec<&[u32]> = vec![&[], &[]];
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward_packed(&t, &store, &refs, &mut scratch);
        assert_eq!(seq.rows(), 0);
        assert_eq!(pooled.shape(), (2, t.config().d_model));
        let (_, ep) = forward(&t, &store, &[], None, &mut scratch);
        for s in 0..2 {
            assert_eq!(pooled.row(s), ep.row(0), "empty sample {s}");
        }
    }

    #[test]
    #[should_panic(expected = "equal effective lengths")]
    fn forward_packed_rejects_mixed_lengths() {
        let (t, store) = setup();
        let refs: Vec<&[u32]> = vec![&[1, 2, 3], &[1, 2]];
        let mut scratch = Scratch::new();
        let _ = forward_packed(&t, &store, &refs, &mut scratch);
    }

    #[test]
    fn forward_packed_clamps_out_of_vocab_tokens() {
        let (t, store) = setup();
        let vocab = t.config().vocab_size as u32;
        let wild: Vec<u32> = vec![3, 9_999_999, 1, u32::MAX];
        let clamped: Vec<u32> = wild.iter().map(|&x| x.min(vocab - 1)).collect();
        let mut scratch = Scratch::new();
        let (_, wild_pooled) = forward_packed(&t, &store, &[&wild], &mut scratch);
        let (_, clamped_pooled) = forward_packed(&t, &store, &[&clamped], &mut scratch);
        assert_eq!(wild_pooled.data(), clamped_pooled.data());
    }

    #[test]
    fn forward_packed_reuses_scratch_allocations() {
        let (t, store) = setup();
        let seqs: Vec<Vec<u32>> = (0..4).map(|s| vec![s as u32 + 1; 5]).collect();
        let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
        let mut scratch = Scratch::new();
        let (seq, pooled) = forward_packed(&t, &store, &refs, &mut scratch);
        scratch.recycle(seq);
        scratch.recycle(pooled);
        let before = scratch.pooled();
        let (seq, pooled) = forward_packed(&t, &store, &refs, &mut scratch);
        scratch.recycle(seq);
        scratch.recycle(pooled);
        assert_eq!(scratch.pooled(), before, "steady state pools buffers");
    }

    #[test]
    fn cached_pass_matches_with_mask() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22];
        let mask = Matrix::from_fn(4, 4, |r, c| if (r + c) % 2 == 0 { 0.0 } else { -1e9 });
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, Some(&mask));
        let (cache, _) = encode_cached(&t, &store, &tokens, Some(&mask), None);
        assert!(close(g.value(out.seq), &cache.seq, 1e-4));
    }

    #[test]
    fn unchanged_rerun_computes_nothing() {
        let (t, store) = setup();
        let tokens = [5u32, 6, 7];
        let (cache, _) = encode_cached(&t, &store, &tokens, None, None);
        let (cache2, stats) = encode_cached(&t, &store, &tokens, None, Some(&cache));
        assert_eq!(stats.rows_computed, 0);
        assert!(close(&cache.seq, &cache2.seq, 1e-6));
    }

    #[test]
    fn masked_change_recomputes_only_reachable_rows() {
        let (t, store) = setup();
        // Two isolated blocks of two tokens: {0,1} and {2,3}.
        let mask = Matrix::from_fn(4, 4, |r, c| if (r < 2) == (c < 2) { 0.0 } else { -1e9 });
        let a = [1u32, 2, 3, 4];
        let mut b = a;
        b[3] = 9; // change inside the second block
        let (cache, _) = encode_cached(&t, &store, &a, Some(&mask), None);
        let (cache_b, stats) = encode_cached(&t, &store, &b, Some(&mask), Some(&cache));
        // Only rows 2 & 3 per layer should recompute.
        assert_eq!(stats.rows_computed, 2 * t.config().n_layers);
        // Block {0,1} outputs identical; block {2,3} differs.
        for i in 0..2 {
            for c in 0..t.config().d_model {
                assert!((cache.seq.get(i, c) - cache_b.seq.get(i, c)).abs() < 1e-6);
            }
        }
        let diff: f32 = (2..4)
            .map(|i| {
                (0..t.config().d_model)
                    .map(|c| (cache.seq.get(i, c) - cache_b.seq.get(i, c)).abs())
                    .sum::<f32>()
            })
            .sum();
        assert!(diff > 1e-5);
    }

    #[test]
    fn incremental_equals_fresh_computation() {
        let (t, store) = setup();
        let mask = Matrix::from_fn(6, 6, |r, c| if r.abs_diff(c) <= 1 { 0.0 } else { -1e9 });
        let a = [1u32, 2, 3, 4, 5, 6];
        let mut b = a;
        b[0] = 8;
        let (cache_a, _) = encode_cached(&t, &store, &a, Some(&mask), None);
        let (incremental, stats) = encode_cached(&t, &store, &b, Some(&mask), Some(&cache_a));
        let (fresh, _) = encode_cached(&t, &store, &b, Some(&mask), None);
        assert!(
            close(&incremental.seq, &fresh.seq, 1e-4),
            "incremental must equal fresh"
        );
        assert!(stats.rows_computed < stats.rows_total, "must save work");
    }

    #[test]
    fn savings_fraction_is_sane() {
        let s = InferStats {
            rows_computed: 3,
            rows_total: 12,
        };
        assert!((s.savings() - 0.75).abs() < 1e-12);
        assert_eq!(InferStats::default().savings(), 0.0);
    }
}
