//! Forward-only encoder inference with block-structured attention caching.
//!
//! This implements the paper's *dynamic prediction acceleration* (Sec. 5.3):
//! when only one segment of the input (e.g. a single operator, or the `data`
//! scalars) changes between predictions, attention blocks not touching the
//! changed tokens are served from cache and only the affected rows are
//! recomputed. The separation mask (Sec. 5.2) makes this effective: rows
//! that are masked off from the changed segment keep their outputs.

use crate::graph::ParamStore;
use crate::matrix::Matrix;
use crate::transformer::Transformer;

/// Threshold below which a mask entry is considered "blocked".
const MASK_BLOCKED: f32 = -1e8;

/// Cached per-layer state.
#[derive(Debug, Clone)]
struct LayerCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    x_out: Matrix,
}

/// Cached encoder state for one token sequence.
#[derive(Debug, Clone)]
pub struct EncoderCache {
    tokens: Vec<u32>,
    x0: Matrix,
    layers: Vec<LayerCache>,
    /// Final per-token representations (`n × d`).
    pub seq: Matrix,
    /// Mean-pooled representation (`1 × d`).
    pub pooled: Matrix,
}

impl EncoderCache {
    /// The token sequence this cache was computed for.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }
}

/// Work accounting for one cached forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Attention/FFN rows actually recomputed (summed over layers).
    pub rows_computed: usize,
    /// Total rows had nothing been cached.
    pub rows_total: usize,
}

impl InferStats {
    /// Fraction of work skipped thanks to the cache (0 when nothing cached).
    pub fn savings(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            1.0 - self.rows_computed as f64 / self.rows_total as f64
        }
    }
}

fn row_matmul(row: &[f32], w: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; w.cols()];
    for (k, &a) in row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        for (o, &b) in out.iter_mut().zip(w.row(k)) {
            *o += a * b;
        }
    }
    out
}

fn layer_norm_row(row: &[f32], gain: &Matrix, bias: &Matrix) -> Vec<f32> {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
    let inv = 1.0 / (var + 1e-5).sqrt();
    row.iter()
        .enumerate()
        .map(|(c, &v)| (v - mean) * inv * gain.get(0, c) + bias.get(0, c))
        .collect()
}

/// Encodes `tokens`, reusing `prev` where the mask proves rows unaffected.
///
/// `mask` is the same additive `n × n` matrix accepted by
/// [`Transformer::encode`]; `None` means full attention (every row depends on
/// every token, so any change invalidates everything).
///
/// Returns the new cache and the work statistics.
///
/// # Panics
///
/// Panics if `mask` does not match the (truncated) token count.
pub fn encode_cached(
    t: &Transformer,
    store: &ParamStore,
    tokens: &[u32],
    mask: Option<&Matrix>,
    prev: Option<&EncoderCache>,
) -> (EncoderCache, InferStats) {
    let raw = t.raw();
    let cfg = raw.config;
    let n = tokens.len().min(cfg.max_len).max(1);
    let ids: Vec<usize> = tokens
        .iter()
        .take(n)
        .map(|&tok| (tok as usize).min(cfg.vocab_size - 1))
        .collect();
    if let Some(m) = mask {
        assert_eq!(m.shape(), (ids.len(), ids.len()), "mask shape");
    }

    // Which input rows changed relative to the cached run?
    let usable_prev =
        prev.filter(|p| p.tokens.len() == ids.len() && p.layers.len() == raw.layers.len());
    let mut changed: Vec<bool> = match usable_prev {
        Some(p) => ids
            .iter()
            .enumerate()
            .map(|(i, &id)| p.tokens[i] as usize != id)
            .collect(),
        None => vec![true; ids.len()],
    };

    let mut stats = InferStats {
        rows_computed: 0,
        rows_total: ids.len() * raw.layers.len(),
    };

    // ---- embeddings ----
    let tok_table = store.get(raw.tok_embed);
    let pos_table = store.get(raw.pos_embed);
    let mut x = match usable_prev {
        Some(p) => p.x0.clone(),
        None => Matrix::zeros(ids.len(), cfg.d_model),
    };
    for (i, &id) in ids.iter().enumerate() {
        if changed[i] {
            for c in 0..cfg.d_model {
                x.set(i, c, tok_table.get(id, c) + pos_table.get(i, c));
            }
        }
    }
    let x0 = x.clone();

    // ---- layers ----
    let heads = cfg.n_heads;
    let hd = cfg.d_model / heads;
    let mut layer_caches = Vec::with_capacity(raw.layers.len());
    for (li, layer) in raw.layers.iter().enumerate() {
        let idsl = layer.ids();
        let prev_layer = usable_prev.map(|p| &p.layers[li]);
        let (g1, b1) = (store.get(idsl.ln1_gain), store.get(idsl.ln1_bias));
        let (wq, wk, wv, wo) = (
            store.get(idsl.wq),
            store.get(idsl.wk),
            store.get(idsl.wv),
            store.get(idsl.wo),
        );

        // q/k/v rows: recompute only changed rows.
        let (mut q, mut k, mut v) = match prev_layer {
            Some(pl) => (pl.q.clone(), pl.k.clone(), pl.v.clone()),
            None => (
                Matrix::zeros(ids.len(), cfg.d_model),
                Matrix::zeros(ids.len(), cfg.d_model),
                Matrix::zeros(ids.len(), cfg.d_model),
            ),
        };
        for i in 0..ids.len() {
            if changed[i] {
                let ln = layer_norm_row(x.row(i), g1, b1);
                q.row_mut(i).copy_from_slice(&row_matmul(&ln, wq));
                k.row_mut(i).copy_from_slice(&row_matmul(&ln, wk));
                v.row_mut(i).copy_from_slice(&row_matmul(&ln, wv));
            }
        }

        // Which output rows change? Row i changes if its own input changed,
        // or it attends (per mask) to any changed row j.
        let mut changed_out = vec![false; ids.len()];
        for i in 0..ids.len() {
            if changed[i] {
                changed_out[i] = true;
                continue;
            }
            let attends_changed = (0..ids.len())
                .any(|j| changed[j] && mask.map(|m| m.get(i, j) > MASK_BLOCKED).unwrap_or(true));
            if attends_changed {
                changed_out[i] = true;
            }
        }

        let (g2, b2) = (store.get(idsl.ln2_gain), store.get(idsl.ln2_bias));
        let (w1, b1f) = (store.get(idsl.w1), store.get(idsl.b1));
        let (w2, b2f) = (store.get(idsl.w2), store.get(idsl.b2));
        let mut x_out = match prev_layer {
            Some(pl) => pl.x_out.clone(),
            None => Matrix::zeros(ids.len(), cfg.d_model),
        };
        let scale = 1.0 / (hd as f32).sqrt();
        for i in 0..ids.len() {
            if !changed_out[i] {
                continue;
            }
            stats.rows_computed += 1;
            // Multi-head attention for row i.
            let mut cat = vec![0.0f32; cfg.d_model];
            for h in 0..heads {
                let off = h * hd;
                // scores over all j
                let mut scores = vec![f32::NEG_INFINITY; ids.len()];
                for (j, s) in scores.iter_mut().enumerate() {
                    let allowed = mask.map(|m| m.get(i, j) > MASK_BLOCKED).unwrap_or(true);
                    if !allowed {
                        continue;
                    }
                    let mut dot = 0.0f32;
                    for c in 0..hd {
                        dot += q.get(i, off + c) * k.get(j, off + c);
                    }
                    *s = dot * scale + mask.map(|m| m.get(i, j)).unwrap_or(0.0);
                }
                // softmax
                let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                let mut weights = vec![0.0f32; ids.len()];
                if max.is_finite() {
                    for (w, &s) in weights.iter_mut().zip(&scores) {
                        if s.is_finite() {
                            *w = (s - max).exp();
                            denom += *w;
                        }
                    }
                } else {
                    // fully-masked row: uniform (matches tape softmax)
                    weights.iter_mut().for_each(|w| *w = 1.0);
                    denom = ids.len() as f32;
                }
                let inv = 1.0 / denom.max(1e-12);
                for (j, &w) in weights.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let a = w * inv;
                    for c in 0..hd {
                        cat[off + c] += a * v.get(j, off + c);
                    }
                }
            }
            let proj = row_matmul(&cat, wo);
            let mut mid = vec![0.0f32; cfg.d_model];
            for c in 0..cfg.d_model {
                mid[c] = x.get(i, c) + proj[c];
            }
            // FFN
            let ln = layer_norm_row(&mid, g2, b2);
            let mut hrow = row_matmul(&ln, w1);
            for (c, hv) in hrow.iter_mut().enumerate() {
                *hv = (*hv + b1f.get(0, c)).max(0.0);
            }
            let out = row_matmul(&hrow, w2);
            for c in 0..cfg.d_model {
                x_out.set(i, c, mid[c] + out[c] + b2f.get(0, c));
            }
        }
        layer_caches.push(LayerCache {
            q,
            k,
            v,
            x_out: x_out.clone(),
        });
        x = x_out;
        changed = changed_out;
    }

    // ---- final layer norm + pooling ----
    let (fg, fb) = (store.get(raw.final_gain), store.get(raw.final_bias));
    let mut seq = match usable_prev {
        Some(p) => p.seq.clone(),
        None => Matrix::zeros(ids.len(), cfg.d_model),
    };
    for i in 0..ids.len() {
        if changed[i] || usable_prev.is_none() {
            let ln = layer_norm_row(x.row(i), fg, fb);
            seq.row_mut(i).copy_from_slice(&ln);
        }
    }
    let mut pooled = Matrix::zeros(1, cfg.d_model);
    for i in 0..ids.len() {
        for c in 0..cfg.d_model {
            pooled.set(0, c, pooled.get(0, c) + seq.get(i, c));
        }
    }
    pooled.scale_assign(1.0 / ids.len() as f32);

    let cache = EncoderCache {
        tokens: ids.iter().map(|&i| i as u32).collect(),
        x0,
        layers: layer_caches,
        seq,
        pooled,
    };
    (cache, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::transformer::TransformerConfig;

    fn setup() -> (Transformer, ParamStore) {
        let mut store = ParamStore::new();
        let t = Transformer::new(TransformerConfig::tiny(64), &mut store, 11);
        (t, store)
    }

    fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn cached_full_pass_matches_tape_forward() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22, 7, 4];
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, None);
        let (cache, stats) = encode_cached(&t, &store, &tokens, None, None);
        assert!(close(g.value(out.seq), &cache.seq, 1e-4));
        assert!(close(g.value(out.pooled), &cache.pooled, 1e-4));
        assert_eq!(stats.rows_computed, stats.rows_total);
    }

    #[test]
    fn cached_pass_matches_with_mask() {
        let (t, store) = setup();
        let tokens = [3u32, 9, 1, 22];
        let mask = Matrix::from_fn(4, 4, |r, c| if (r + c) % 2 == 0 { 0.0 } else { -1e9 });
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &tokens, Some(&mask));
        let (cache, _) = encode_cached(&t, &store, &tokens, Some(&mask), None);
        assert!(close(g.value(out.seq), &cache.seq, 1e-4));
    }

    #[test]
    fn unchanged_rerun_computes_nothing() {
        let (t, store) = setup();
        let tokens = [5u32, 6, 7];
        let (cache, _) = encode_cached(&t, &store, &tokens, None, None);
        let (cache2, stats) = encode_cached(&t, &store, &tokens, None, Some(&cache));
        assert_eq!(stats.rows_computed, 0);
        assert!(close(&cache.seq, &cache2.seq, 1e-6));
    }

    #[test]
    fn masked_change_recomputes_only_reachable_rows() {
        let (t, store) = setup();
        // Two isolated blocks of two tokens: {0,1} and {2,3}.
        let mask = Matrix::from_fn(4, 4, |r, c| if (r < 2) == (c < 2) { 0.0 } else { -1e9 });
        let a = [1u32, 2, 3, 4];
        let mut b = a;
        b[3] = 9; // change inside the second block
        let (cache, _) = encode_cached(&t, &store, &a, Some(&mask), None);
        let (cache_b, stats) = encode_cached(&t, &store, &b, Some(&mask), Some(&cache));
        // Only rows 2 & 3 per layer should recompute.
        assert_eq!(stats.rows_computed, 2 * t.config().n_layers);
        // Block {0,1} outputs identical; block {2,3} differs.
        for i in 0..2 {
            for c in 0..t.config().d_model {
                assert!((cache.seq.get(i, c) - cache_b.seq.get(i, c)).abs() < 1e-6);
            }
        }
        let diff: f32 = (2..4)
            .map(|i| {
                (0..t.config().d_model)
                    .map(|c| (cache.seq.get(i, c) - cache_b.seq.get(i, c)).abs())
                    .sum::<f32>()
            })
            .sum();
        assert!(diff > 1e-5);
    }

    #[test]
    fn incremental_equals_fresh_computation() {
        let (t, store) = setup();
        let mask = Matrix::from_fn(6, 6, |r, c| if r.abs_diff(c) <= 1 { 0.0 } else { -1e9 });
        let a = [1u32, 2, 3, 4, 5, 6];
        let mut b = a;
        b[0] = 8;
        let (cache_a, _) = encode_cached(&t, &store, &a, Some(&mask), None);
        let (incremental, stats) = encode_cached(&t, &store, &b, Some(&mask), Some(&cache_a));
        let (fresh, _) = encode_cached(&t, &store, &b, Some(&mask), None);
        assert!(
            close(&incremental.seq, &fresh.seq, 1e-4),
            "incremental must equal fresh"
        );
        assert!(stats.rows_computed < stats.rows_total, "must save work");
    }

    #[test]
    fn savings_fraction_is_sane() {
        let s = InferStats {
            rows_computed: 3,
            rows_total: 12,
        };
        assert!((s.savings() - 0.75).abs() < 1e-12);
        assert_eq!(InferStats::default().savings(), 0.0);
    }
}
