//! # llmulator-nn
//!
//! From-scratch neural-network substrate for the LLMulator reproduction —
//! the role the HuggingFace + LLaMA-3.2 stack plays in the paper.
//!
//! The crate provides:
//!
//! * [`Matrix`] — dense `f32` matrices with blocked, allocation-free matmul
//!   kernels (bit-identical to the naive `*_naive` test oracles),
//! * [`Scratch`] — a reusable buffer arena keeping steady-state inference
//!   free of heap allocation,
//! * [`Graph`] — a tape-based reverse-mode autodiff engine (gradient-checked
//!   against finite differences in the test suite),
//! * [`Transformer`] — a pre-norm encoder with *pluggable additive attention
//!   masks* (the hook for LLMulator's dynamic control-flow separation),
//! * [`infer::forward`] / [`infer::encode_batch`] — the production forward
//!   pass (tape-free, scratch-backed) and its scoped-thread batch fan-out,
//! * [`infer::forward_packed`] — batch-level kernel fusion: same-length
//!   sequences packed into one blocked GEMM per layer per group,
//!   bit-identical per sample to [`infer::forward`],
//! * [`infer::encode_cached`] — forward-only inference with block-structured
//!   attention caching (LLMulator's dynamic prediction acceleration),
//! * [`AdamW`] — decoupled-weight-decay optimizer,
//! * [`train::batch_grads`] / [`train::par_map`] — parallel mini-batch
//!   gradient accumulation and a generic scoped-thread map.
//!
//! ```
//! use llmulator_nn::{Graph, ParamStore, Transformer, TransformerConfig};
//!
//! let mut store = ParamStore::new();
//! let encoder = Transformer::new(TransformerConfig::tiny(100), &mut store, 0);
//! let mut g = Graph::new();
//! let out = encoder.encode(&mut g, &store, &[5, 17, 3], None);
//! assert_eq!(g.value(out.pooled).shape(), (1, 16));
//! ```

// Lint baseline: the autodiff/inference kernels iterate rows by index into
// several matrices at once (values, gradients, caches, masks); the iterator
// rewrites clippy suggests obscure the row-parallel structure.
#![allow(clippy::needless_range_loop)]

pub mod adam;
pub mod graph;
pub mod infer;
pub mod matrix;
pub mod scratch;
pub mod train;
pub mod transformer;

pub use adam::{AdamConfig, AdamW};
pub use graph::{Graph, NodeId, ParamId, ParamStore};
pub use infer::{
    encode_batch, encode_cached, encode_cached_with, encode_naive, forward, forward_packed,
    EncoderCache, InferStats,
};
pub use matrix::{softmax_slice, Matrix};
pub use scratch::Scratch;
pub use train::{available_threads, par_map, par_map_init};
pub use transformer::{EncodeOut, Transformer, TransformerConfig};
