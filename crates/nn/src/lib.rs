//! # llmulator-nn
//!
//! From-scratch neural-network substrate for the LLMulator reproduction —
//! the role the HuggingFace + LLaMA-3.2 stack plays in the paper.
//!
//! The crate provides:
//!
//! * [`Matrix`] — dense `f32` matrices with the handful of kernels a small
//!   transformer needs,
//! * [`Graph`] — a tape-based reverse-mode autodiff engine (gradient-checked
//!   against finite differences in the test suite),
//! * [`Transformer`] — a pre-norm encoder with *pluggable additive attention
//!   masks* (the hook for LLMulator's dynamic control-flow separation),
//! * [`infer::encode_cached`] — forward-only inference with block-structured
//!   attention caching (LLMulator's dynamic prediction acceleration),
//! * [`AdamW`] — decoupled-weight-decay optimizer,
//! * [`train::batch_grads`] — parallel mini-batch gradient accumulation.
//!
//! ```
//! use llmulator_nn::{Graph, ParamStore, Transformer, TransformerConfig};
//!
//! let mut store = ParamStore::new();
//! let encoder = Transformer::new(TransformerConfig::tiny(100), &mut store, 0);
//! let mut g = Graph::new();
//! let out = encoder.encode(&mut g, &store, &[5, 17, 3], None);
//! assert_eq!(g.value(out.pooled).shape(), (1, 16));
//! ```

// Lint baseline: the autodiff/inference kernels iterate rows by index into
// several matrices at once (values, gradients, caches, masks); the iterator
// rewrites clippy suggests obscure the row-parallel structure.
#![allow(clippy::needless_range_loop)]

pub mod adam;
pub mod graph;
pub mod infer;
pub mod matrix;
pub mod train;
pub mod transformer;

pub use adam::{AdamConfig, AdamW};
pub use graph::{Graph, NodeId, ParamId, ParamStore};
pub use infer::{encode_cached, EncoderCache, InferStats};
pub use matrix::Matrix;
pub use transformer::{EncodeOut, Transformer, TransformerConfig};
