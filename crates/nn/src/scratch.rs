//! A reusable buffer arena for allocation-free inference.
//!
//! Forward passes need a handful of temporaries per layer (normalized
//! activations, attention scores, FFN hidden rows). Allocating them per
//! row — or even per call — dominated the profile of the naive inference
//! path; a [`Scratch`] keeps returned buffers pooled so steady-state
//! inference performs no heap allocation at all.

use crate::matrix::Matrix;

/// Pool of reusable [`Matrix`] and row (`Vec<f32>`) buffers.
///
/// Buffers handed out are zero-filled at the requested shape; returning them
/// with [`Scratch::recycle`] / [`Scratch::recycle_row`] keeps their
/// allocations alive for the next request. The pool is intentionally
/// shape-agnostic: a recycled buffer's capacity is reused for whatever shape
/// is asked for next.
#[derive(Debug, Default)]
pub struct Scratch {
    mats: Vec<Matrix>,
    rows: Vec<Vec<f32>>,
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// A zeroed `rows × cols` matrix, reusing a pooled allocation when one
    /// is available.
    ///
    /// Selection is best-fit rather than LIFO: the pooled buffer with the
    /// smallest capacity that already holds the request is preferred, and
    /// when none is large enough the largest buffer grows. The packed batch
    /// path cycles through very differently sized buffers per group (an
    /// `n × n` score block next to a `B·n × d_ff` hidden block), and LIFO
    /// reuse would repeatedly grow small buffers while large ones sit idle.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, m) in self.mats.iter().enumerate() {
            let cap = m.capacity();
            let better = match best {
                None => true,
                Some((_, best_cap)) if best_cap >= need => cap >= need && cap < best_cap,
                Some((_, best_cap)) => cap > best_cap,
            };
            if better {
                best = Some((i, cap));
            }
        }
        let mut m = match best {
            Some((i, _)) => self.mats.swap_remove(i),
            None => Matrix::zeros(0, 0),
        };
        m.resize_buf(rows, cols);
        m
    }

    /// Returns a matrix to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.mats.push(m);
    }

    /// A zeroed row buffer of `len` floats.
    pub fn row(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.rows.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Returns a row buffer to the pool.
    pub fn recycle_row(&mut self, v: Vec<f32>) {
        self.rows.push(v);
    }

    /// Number of pooled buffers (matrices + rows), for tests.
    pub fn pooled(&self) -> usize {
        self.mats.len() + self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_zeroed_and_reused() {
        let mut s = Scratch::new();
        let mut m = s.matrix(3, 4);
        m.set(1, 2, 9.0);
        let ptr = m.data().as_ptr();
        let cap_probe = m.data().len();
        assert_eq!(cap_probe, 12);
        s.recycle(m);
        // Smaller shape reuses the same allocation, zeroed.
        let m2 = s.matrix(2, 3);
        assert_eq!(m2.shape(), (2, 3));
        assert!(m2.data().iter().all(|&v| v == 0.0));
        assert_eq!(m2.data().as_ptr(), ptr, "allocation reused");
    }

    #[test]
    fn matrix_reuse_is_best_fit() {
        let mut s = Scratch::new();
        let big = s.matrix(8, 8); // capacity 64
        let small = s.matrix(2, 2); // capacity 4
        let big_ptr = big.data().as_ptr();
        let small_ptr = small.data().as_ptr();
        s.recycle(big);
        s.recycle(small);
        // A small request takes the small buffer even though the big one was
        // recycled first...
        let m = s.matrix(2, 2);
        assert_eq!(m.data().as_ptr(), small_ptr, "small request → small buffer");
        s.recycle(m);
        // ...and a large request takes the big buffer.
        let m = s.matrix(6, 6);
        assert_eq!(m.data().as_ptr(), big_ptr, "large request → large buffer");
        s.recycle(m);
        // A request larger than everything grows the largest buffer.
        let m = s.matrix(16, 16);
        assert_eq!(m.shape(), (16, 16));
        assert_eq!(s.pooled(), 1, "grew a pooled buffer instead of allocating");
    }

    #[test]
    fn rows_are_zeroed_and_reused() {
        let mut s = Scratch::new();
        let mut r = s.row(8);
        r[3] = 5.0;
        s.recycle_row(r);
        let r2 = s.row(4);
        assert_eq!(r2, vec![0.0; 4]);
        assert_eq!(s.pooled(), 0);
        s.recycle_row(r2);
        assert_eq!(s.pooled(), 1);
    }
}
