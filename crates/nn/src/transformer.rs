//! A pre-norm transformer encoder with pluggable additive attention masks.
//!
//! This is the substitute for the paper's pre-trained LLaMA backbone: the
//! numeric-modeling interfaces under test (digit tokens in, digit-wise
//! categorical heads out, DPO on token log-likelihoods, masked/segmented
//! attention) are all architecture-independent, so a compact encoder trained
//! from scratch on the synthesized corpus exercises the identical code paths.

use crate::graph::{Graph, NodeId, ParamId, ParamStore};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Encoder hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Encoder layers.
    pub n_layers: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
}

impl TransformerConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny(vocab_size: usize) -> TransformerConfig {
        TransformerConfig {
            vocab_size,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
        }
    }

    /// Effective sequence length for a raw token count: the number of rows
    /// every encoder path (tape, blocked, cached, packed) actually
    /// processes after truncation to `max_len`.
    ///
    /// This is the batch-fusion grouping key: two sequences can share a
    /// packed per-layer GEMM ([`crate::infer::forward_packed`]) iff their
    /// effective lengths match.
    pub fn effective_len(&self, token_count: usize) -> usize {
        token_count.min(self.max_len)
    }
}

/// Clamps a raw token id into the vocabulary: out-of-vocab ids map to the
/// last vocabulary slot (the tokenizer's ids are always in range; the clamp
/// guards externally supplied token streams).
///
/// # Panics
///
/// Panics if `vocab_size` is zero — there is no valid id to clamp to, and
/// the previous inline `(tok as usize).min(vocab_size - 1)` underflowed to
/// `usize::MAX` instead, deferring the failure to an opaque out-of-bounds
/// row index inside the embedding lookup.
pub(crate) fn clamp_token(tok: u32, vocab_size: usize) -> usize {
    assert!(vocab_size > 0, "clamp_token: empty vocabulary");
    (tok as usize).min(vocab_size - 1)
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct LayerParams {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    ln1_gain: ParamId,
    ln1_bias: ParamId,
    ln2_gain: ParamId,
    ln2_bias: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

/// Parameter handles for a transformer encoder. Parameters themselves live in
/// the [`ParamStore`] passed at construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transformer {
    config: TransformerConfig,
    tok_embed: ParamId,
    pos_embed: ParamId,
    final_gain: ParamId,
    final_bias: ParamId,
    layers: Vec<LayerParams>,
}

/// Output of an encoder forward pass.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOut {
    /// Per-token representations (`n × d_model`).
    pub seq: NodeId,
    /// Mean-pooled representation (`1 × d_model`).
    pub pooled: NodeId,
}

impl Transformer {
    /// Allocates encoder parameters in `store` with seeded initialization.
    ///
    /// # Panics
    ///
    /// Panics unless `n_heads` divides `d_model`.
    pub fn new(config: TransformerConfig, store: &mut ParamStore, seed: u64) -> Transformer {
        assert_eq!(
            config.d_model % config.n_heads,
            0,
            "n_heads must divide d_model"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d_model;
        let std = 0.02f32.max(1.0 / (d as f32).sqrt() * 0.5);
        let tok_embed = store.add(
            "tok_embed",
            Matrix::randn(config.vocab_size, d, std, &mut rng),
        );
        let pos_embed = store.add("pos_embed", Matrix::randn(config.max_len, d, std, &mut rng));
        let ones = Matrix::from_fn(1, d, |_, _| 1.0);
        let zeros = Matrix::zeros(1, d);
        let final_gain = store.add("final_gain", ones.clone());
        let final_bias = store.add("final_bias", zeros.clone());
        let mut layers = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            let p = |name: &str| format!("layer{l}.{name}");
            layers.push(LayerParams {
                wq: store.add(p("wq"), Matrix::randn(d, d, std, &mut rng)),
                wk: store.add(p("wk"), Matrix::randn(d, d, std, &mut rng)),
                wv: store.add(p("wv"), Matrix::randn(d, d, std, &mut rng)),
                wo: store.add(p("wo"), Matrix::randn(d, d, std, &mut rng)),
                ln1_gain: store.add(p("ln1_gain"), ones.clone()),
                ln1_bias: store.add(p("ln1_bias"), zeros.clone()),
                ln2_gain: store.add(p("ln2_gain"), ones.clone()),
                ln2_bias: store.add(p("ln2_bias"), zeros.clone()),
                w1: store.add(p("w1"), Matrix::randn(d, config.d_ff, std, &mut rng)),
                b1: store.add(p("b1"), Matrix::zeros(1, config.d_ff)),
                w2: store.add(p("w2"), Matrix::randn(config.d_ff, d, std, &mut rng)),
                b2: store.add(p("b2"), Matrix::zeros(1, d)),
            });
        }
        Transformer {
            config,
            tok_embed,
            pos_embed,
            final_gain,
            final_bias,
            layers,
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Internal parameter handles exposed for the cached inference path.
    pub(crate) fn raw(&self) -> RawHandles<'_> {
        RawHandles {
            config: &self.config,
            tok_embed: self.tok_embed,
            pos_embed: self.pos_embed,
            final_gain: self.final_gain,
            final_bias: self.final_bias,
            layers: &self.layers,
        }
    }

    /// Forward pass on the autodiff tape.
    ///
    /// `tokens` longer than `max_len` are truncated. `mask`, when present,
    /// must be an `n × n` additive matrix (0 to attend, a large negative
    /// number to block) where `n` is the truncated token count.
    pub fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        tokens: &[u32],
        mask: Option<&Matrix>,
    ) -> EncodeOut {
        let n = tokens.len().min(self.config.max_len).max(1);
        let ids: Vec<usize> = tokens
            .iter()
            .take(n)
            .map(|&t| clamp_token(t, self.config.vocab_size))
            .collect();
        let pos_ids: Vec<usize> = (0..ids.len()).collect();
        let tok_table = g.param(store, self.tok_embed);
        let pos_table = g.param(store, self.pos_embed);
        let te = g.gather(tok_table, &ids);
        let pe = g.gather(pos_table, &pos_ids);
        let mut x = g.add(te, pe);
        let mask_node = mask.map(|m| {
            assert_eq!(m.shape(), (ids.len(), ids.len()), "mask shape");
            g.input(m.clone())
        });
        for layer in &self.layers {
            x = self.encode_layer(g, store, layer, x, mask_node);
        }
        // Final layer norm with learned gain/bias.
        let ln = g.layer_norm_rows(x);
        let gain = g.param(store, self.final_gain);
        let bias = g.param(store, self.final_bias);
        let scaled = g.mul_row(ln, gain);
        let seq = g.add_row(scaled, bias);
        let pooled = g.mean_rows(seq);
        EncodeOut { seq, pooled }
    }

    fn encode_layer(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        layer: &LayerParams,
        x: NodeId,
        mask: Option<NodeId>,
    ) -> NodeId {
        let d = self.config.d_model;
        let heads = self.config.n_heads;
        let hd = d / heads;
        // ---- attention sub-block (pre-norm) ----
        let ln = g.layer_norm_rows(x);
        let g1 = g.param(store, layer.ln1_gain);
        let b1 = g.param(store, layer.ln1_bias);
        let ln = g.mul_row(ln, g1);
        let ln = g.add_row(ln, b1);
        let wq = g.param(store, layer.wq);
        let wk = g.param(store, layer.wk);
        let wv = g.param(store, layer.wv);
        let q = g.matmul(ln, wq);
        let k = g.matmul(ln, wk);
        let v = g.matmul(ln, wv);
        let mut head_outs = Vec::with_capacity(heads);
        for h in 0..heads {
            let qh = g.slice_cols(q, h * hd, hd);
            let kh = g.slice_cols(k, h * hd, hd);
            let vh = g.slice_cols(v, h * hd, hd);
            let scores = g.matmul_nt(qh, kh);
            let scaled = g.scale(scores, 1.0 / (hd as f32).sqrt());
            let masked = match mask {
                Some(m) => g.add(scaled, m),
                None => scaled,
            };
            let attn = g.softmax_rows(masked);
            head_outs.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&head_outs);
        let wo = g.param(store, layer.wo);
        let proj = g.matmul(cat, wo);
        let x = g.add(x, proj);
        // ---- feed-forward sub-block (pre-norm) ----
        let ln = g.layer_norm_rows(x);
        let g2 = g.param(store, layer.ln2_gain);
        let b2p = g.param(store, layer.ln2_bias);
        let ln = g.mul_row(ln, g2);
        let ln = g.add_row(ln, b2p);
        let w1 = g.param(store, layer.w1);
        let b1p = g.param(store, layer.b1);
        let h = g.matmul(ln, w1);
        let h = g.add_row(h, b1p);
        let h = g.relu(h);
        let w2 = g.param(store, layer.w2);
        let b2pp = g.param(store, layer.b2);
        let h = g.matmul(h, w2);
        let h = g.add_row(h, b2pp);
        g.add(x, h)
    }
}

/// Borrowed parameter handles for the inference path (crate-internal).
pub(crate) struct RawHandles<'a> {
    pub config: &'a TransformerConfig,
    pub tok_embed: ParamId,
    pub pos_embed: ParamId,
    pub final_gain: ParamId,
    pub final_bias: ParamId,
    pub layers: &'a [LayerParams],
}

impl LayerParams {
    pub(crate) fn ids(&self) -> LayerIds {
        LayerIds {
            wq: self.wq,
            wk: self.wk,
            wv: self.wv,
            wo: self.wo,
            ln1_gain: self.ln1_gain,
            ln1_bias: self.ln1_bias,
            ln2_gain: self.ln2_gain,
            ln2_bias: self.ln2_bias,
            w1: self.w1,
            b1: self.b1,
            w2: self.w2,
            b2: self.b2,
        }
    }
}

/// Flat copy of one layer's parameter ids (crate-internal).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LayerIds {
    pub wq: ParamId,
    pub wk: ParamId,
    pub wv: ParamId,
    pub wo: ParamId,
    pub ln1_gain: ParamId,
    pub ln1_bias: ParamId,
    pub ln2_gain: ParamId,
    pub ln2_bias: ParamId,
    pub w1: ParamId,
    pub b1: ParamId,
    pub w2: ParamId,
    pub b2: ParamId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{AdamConfig, AdamW};

    fn setup() -> (Transformer, ParamStore) {
        let mut store = ParamStore::new();
        let t = Transformer::new(TransformerConfig::tiny(32), &mut store, 42);
        (t, store)
    }

    #[test]
    fn clamp_token_pins_out_of_vocab_to_last_slot() {
        assert_eq!(clamp_token(0, 32), 0);
        assert_eq!(clamp_token(31, 32), 31);
        assert_eq!(clamp_token(32, 32), 31, "first out-of-vocab id clamps");
        assert_eq!(clamp_token(u32::MAX, 32), 31, "any out-of-vocab id clamps");
        assert_eq!(
            clamp_token(7, 1),
            0,
            "single-token vocab maps everything to 0"
        );
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn clamp_token_rejects_empty_vocab() {
        let _ = clamp_token(0, 0);
    }

    #[test]
    fn effective_len_truncates_to_max_len() {
        let cfg = TransformerConfig::tiny(10);
        assert_eq!(cfg.effective_len(0), 0);
        assert_eq!(cfg.effective_len(5), 5);
        assert_eq!(cfg.effective_len(32), 32);
        assert_eq!(cfg.effective_len(1000), 32);
    }

    #[test]
    fn encode_shapes_are_consistent() {
        let (t, store) = setup();
        let mut g = Graph::new();
        let out = t.encode(&mut g, &store, &[1, 2, 3, 4, 5], None);
        assert_eq!(g.value(out.seq).shape(), (5, 16));
        assert_eq!(g.value(out.pooled).shape(), (1, 16));
    }

    #[test]
    fn truncates_to_max_len() {
        let (t, store) = setup();
        let mut g = Graph::new();
        let tokens: Vec<u32> = (0..100).map(|i| i % 30).collect();
        let out = t.encode(&mut g, &store, &tokens, None);
        assert_eq!(g.value(out.seq).rows(), 32);
    }

    #[test]
    fn mask_changes_output() {
        let (t, store) = setup();
        let tokens = [1u32, 2, 3, 4];
        let mut g1 = Graph::new();
        let free = t.encode(&mut g1, &store, &tokens, None);
        // Block everything except self-attention.
        let mask = Matrix::from_fn(4, 4, |r, c| if r == c { 0.0 } else { -1e9 });
        let mut g2 = Graph::new();
        let blocked = t.encode(&mut g2, &store, &tokens, Some(&mask));
        let a = g1.value(free.pooled).clone();
        let b = g2.value(blocked.pooled).clone();
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4, "mask must alter the encoding (diff {diff})");
    }

    #[test]
    fn can_learn_token_classification() {
        // Distinguish sequences starting with token 1 vs token 2.
        let mut store = ParamStore::new();
        let t = Transformer::new(TransformerConfig::tiny(8), &mut store, 7);
        let head = store.add(
            "head",
            Matrix::randn(16, 2, 0.1, &mut StdRng::seed_from_u64(3)),
        );
        let mut opt = AdamW::new(&store, AdamConfig::default());
        let samples: Vec<(Vec<u32>, usize)> = vec![
            (vec![1, 3, 4], 0),
            (vec![2, 3, 4], 1),
            (vec![1, 5, 6], 0),
            (vec![2, 5, 6], 1),
        ];
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let mut total = 0.0;
            let mut grads: Option<Vec<(ParamId, Matrix)>> = None;
            for (tokens, label) in &samples {
                let mut g = Graph::new();
                let out = t.encode(&mut g, &store, tokens, None);
                let h = g.param(&store, head);
                let logits = g.matmul(out.pooled, h);
                let loss = g.cross_entropy(logits, &[*label]);
                total += g.value(loss).get(0, 0);
                g.backward(loss);
                let batch = g.param_grads(&store);
                match &mut grads {
                    None => grads = Some(batch),
                    Some(acc) => {
                        for ((_, a), (_, b)) in acc.iter_mut().zip(batch) {
                            a.add_assign(&b);
                        }
                    }
                }
            }
            opt.apply(&mut store, &grads.expect("non-empty batch"));
            last = total / samples.len() as f32;
        }
        assert!(last < 0.2, "classification loss converged to {last}");
    }

    #[test]
    #[should_panic(expected = "n_heads must divide")]
    fn rejects_bad_head_count() {
        let mut store = ParamStore::new();
        let cfg = TransformerConfig {
            vocab_size: 8,
            d_model: 10,
            n_heads: 3,
            n_layers: 1,
            d_ff: 8,
            max_len: 8,
        };
        let _ = Transformer::new(cfg, &mut store, 0);
    }
}
