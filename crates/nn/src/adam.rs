//! The AdamW optimizer (decoupled weight decay), as used by the paper's SFT
//! and DPO stages.

use crate::graph::{ParamId, ParamStore};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// AdamW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            grad_clip: 1.0,
        }
    }
}

/// AdamW state (first/second moments per parameter).
#[derive(Debug, Clone)]
pub struct AdamW {
    config: AdamConfig,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    step: u64,
}

impl AdamW {
    /// Creates optimizer state matching `store`'s parameters.
    pub fn new(store: &ParamStore, config: AdamConfig) -> AdamW {
        let m = store
            .iter()
            .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let v = store
            .iter()
            .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        AdamW {
            config,
            m,
            v,
            step: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Overrides the learning rate (used for DPO fine-tuning schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one update from accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if a gradient's shape does not match its parameter.
    pub fn apply(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        self.step += 1;
        let c = self.config;
        // Global norm clipping.
        let mut scale = 1.0f32;
        if c.grad_clip > 0.0 {
            let norm: f32 = grads
                .iter()
                .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f32>())
                .sum::<f32>()
                .sqrt();
            if norm > c.grad_clip {
                scale = c.grad_clip / norm;
            }
        }
        let bias1 = 1.0 - c.beta1.powi(self.step as i32);
        let bias2 = 1.0 - c.beta2.powi(self.step as i32);
        for (pid, grad) in grads {
            let idx = pid.0;
            let p = store.get_mut(*pid);
            assert_eq!(p.shape(), grad.shape(), "gradient shape mismatch");
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for i in 0..p.data().len() {
                let g = grad.data()[i] * scale;
                let mi = c.beta1 * m.data()[i] + (1.0 - c.beta1) * g;
                let vi = c.beta2 * v.data()[i] + (1.0 - c.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                let w = p.data()[i];
                p.data_mut()[i] = w - c.lr * (m_hat / (v_hat.sqrt() + c.eps) + c.weight_decay * w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 elementwise.
        let mut store = ParamStore::new();
        let pid = store.add("w", Matrix::zeros(1, 4));
        let mut opt = AdamW::new(
            &store,
            AdamConfig {
                lr: 0.2,
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
        );
        for _ in 0..200 {
            let w = store.get(pid).clone();
            let grad = w.map(|x| 2.0 * (x - 3.0));
            opt.apply(&mut store, &[(pid, grad)]);
        }
        for &v in store.get(pid).data() {
            assert!((v - 3.0).abs() < 0.05, "converged to {v}");
        }
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = AdamW::new(
            &store,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.5,
                ..AdamConfig::default()
            },
        );
        for _ in 0..50 {
            let zero_grad = Matrix::zeros(1, 1);
            opt.apply(&mut store, &[(pid, zero_grad)]);
        }
        assert!(store.get(pid).get(0, 0).abs() < 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Matrix::zeros(1, 1));
        let mut opt = AdamW::new(
            &store,
            AdamConfig {
                lr: 0.1,
                grad_clip: 1.0,
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
        );
        opt.apply(&mut store, &[(pid, Matrix::from_vec(1, 1, vec![1e6]))]);
        // One Adam step moves at most ~lr regardless of raw gradient.
        assert!(store.get(pid).get(0, 0).abs() < 0.2);
    }

    #[test]
    fn integrates_with_graph_grads() {
        let mut store = ParamStore::new();
        let pid = store.add("logits", Matrix::zeros(1, 3));
        let mut opt = AdamW::new(
            &store,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
        );
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let mut g = Graph::new();
            let l = g.param(&store, pid);
            let loss = g.cross_entropy(l, &[1]);
            let lv = g.value(loss).get(0, 0);
            g.backward(loss);
            let grads = g.param_grads(&store);
            opt.apply(&mut store, &grads);
            last = lv;
        }
        assert!(last < 0.1, "loss converged to {last}");
    }
}
