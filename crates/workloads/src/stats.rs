//! Table 2 workload statistics: text lengths, operator counts and dynamic
//! control-flow parameter counts.

use crate::workload::Workload;
use llmulator_ir::analysis;
use serde::{Deserialize, Serialize};

/// One Table 2 row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Workload name.
    pub name: String,
    /// Character count of the full model input ("All Len").
    pub all_len: usize,
    /// Character count of the dataflow graph program ("Graph Len").
    pub graph_len: usize,
    /// Number of operators in the dataflow graph ("Op Num").
    pub op_num: usize,
    /// Number of dynamic control-flow-related parameters ("Dyn. Num").
    pub dyn_num: usize,
    /// Character count of the operator definitions ("Op Len").
    pub op_len: usize,
}

/// Computes the Table 2 statistics for a workload.
pub fn stats(workload: &Workload) -> WorkloadStats {
    let program = &workload.program;
    let graph_len = program.render_graph().chars().count();
    let op_len = program.render_operators().chars().count();
    let all_len = program.render().chars().count();
    let report = analysis::analyze_program(program);
    WorkloadStats {
        name: workload.name.clone(),
        all_len,
        graph_len,
        op_num: program.graph.op_count(),
        dyn_num: report.dynamic_param_count(program),
        op_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modern;

    #[test]
    fn lengths_decompose_sensibly() {
        for w in modern::all() {
            let s = stats(&w);
            assert!(s.all_len >= s.graph_len + s.op_len, "{}", s.name);
            assert!(s.graph_len > 0 && s.op_len > 0, "{}", s.name);
            assert!(s.op_num > 0, "{}", s.name);
        }
    }

    #[test]
    fn dynamic_counts_nonzero_for_modern_workloads() {
        for w in modern::all() {
            let s = stats(&w);
            assert!(s.dyn_num >= 1, "{} has dynamic control flow", s.name);
        }
    }

    #[test]
    fn t5_is_the_largest_nlp_workload() {
        let all = modern::all();
        let t5 = stats(&all[11]);
        assert_eq!(t5.name, "Tab. 2-12");
        let max_ops = all.iter().map(|w| stats(w).op_num).max().expect("rows");
        assert_eq!(t5.op_num, max_ops, "T5 has the most operators (21)");
    }
}
