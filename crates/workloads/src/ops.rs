//! Reusable operator constructors for the evaluation workloads.
//!
//! Every constructor returns a self-contained [`Operator`] whose array
//! parameters follow the convention *inputs first, output last* (the graph
//! edge extraction relies on it).

use llmulator_ir::builder::OperatorBuilder;
use llmulator_ir::{BinOp, Expr, Intrinsic, LValue, Operator, Stmt};

/// 2-D convolution: `y[i][j] = Σ x[i+a][j+b]·w[a][b]` over the valid region.
pub fn conv2d(name: &str, h: usize, w: usize, k: usize) -> Operator {
    let oh = h.saturating_sub(k) + 1;
    let ow = w.saturating_sub(k) + 1;
    OperatorBuilder::new(name)
        .array_param("x", [h, w])
        .array_param("wgt", [k, k])
        .array_param("y", [h, w])
        .loop_nest(&[("i", oh), ("j", ow), ("a", k), ("b", k)], |idx| {
            vec![Stmt::accumulate(
                "y",
                vec![idx[0].clone(), idx[1].clone()],
                Expr::load(
                    "x",
                    vec![
                        idx[0].clone() + idx[2].clone(),
                        idx[1].clone() + idx[3].clone(),
                    ],
                ) * Expr::load("wgt", vec![idx[2].clone(), idx[3].clone()]),
            )]
        })
        .build()
}

/// Depthwise 2-D convolution (single channel per filter — structurally a
/// `conv2d` with its own weights; kept separate for workload realism).
pub fn depthwise_conv(name: &str, h: usize, w: usize, k: usize) -> Operator {
    conv2d(name, h, w, k)
}

/// Pointwise (1×1) convolution over a flattened feature map.
pub fn pointwise(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("wgt", [1])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::load("x", vec![idx[0].clone()]) * Expr::load("wgt", vec![Expr::int(0)]),
            )]
        })
        .build()
}

/// Batch normalization (affine form): `y = (x − μ)·γ + β` with scalar stats.
pub fn batch_norm(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("stats", [4])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            let mu = Expr::load("stats", vec![Expr::int(0)]);
            let gamma = Expr::load("stats", vec![Expr::int(1)]);
            let beta = Expr::load("stats", vec![Expr::int(2)]);
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                (Expr::load("x", vec![idx[0].clone()]) - mu) * gamma + beta,
            )]
        })
        .build()
}

/// Elementwise ReLU.
pub fn relu_op(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::call(Intrinsic::Relu, vec![Expr::load("x", vec![idx[0].clone()])]),
            )]
        })
        .build()
}

/// Elementwise sigmoid (GAN discriminator heads, attention gates).
pub fn sigmoid_op(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::call(
                    Intrinsic::Sigmoid,
                    vec![Expr::load("x", vec![idx[0].clone()])],
                ),
            )]
        })
        .build()
}

/// 2-D max pooling with a `k × k` window and stride `k`.
pub fn maxpool2d(name: &str, h: usize, w: usize, k: usize) -> Operator {
    let oh = (h / k).max(1);
    let ow = (w / k).max(1);
    OperatorBuilder::new(name)
        .array_param("x", [h, w])
        .array_param("y", [oh, ow])
        .loop_nest(&[("i", oh), ("j", ow), ("a", k), ("b", k)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone(), idx[1].clone()]),
                Expr::call(
                    Intrinsic::Max,
                    vec![
                        Expr::load("y", vec![idx[0].clone(), idx[1].clone()]),
                        Expr::load(
                            "x",
                            vec![
                                idx[0].clone() * Expr::int(k as i64) + idx[2].clone(),
                                idx[1].clone() * Expr::int(k as i64) + idx[3].clone(),
                            ],
                        ),
                    ],
                ),
            )]
        })
        .build()
}

/// Dense matrix multiply `c[m][n] += a[m][k]·b[k][n]`.
pub fn gemm(name: &str, m: usize, n: usize, k: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("a", [m, k])
        .array_param("b", [k, n])
        .array_param("c", [m, n])
        .loop_nest(&[("i", m), ("j", n), ("kk", k)], |idx| {
            vec![Stmt::accumulate(
                "c",
                vec![idx[0].clone(), idx[1].clone()],
                Expr::load("a", vec![idx[0].clone(), idx[2].clone()])
                    * Expr::load("b", vec![idx[2].clone(), idx[1].clone()]),
            )]
        })
        .build()
}

/// Row softmax: exponentiate, accumulate, normalize (imperfect nest).
pub fn softmax(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("tmp", [1])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![
                Stmt::assign(
                    LValue::store("y", vec![idx[0].clone()]),
                    Expr::call(Intrinsic::Exp, vec![Expr::load("x", vec![idx[0].clone()])]),
                ),
                Stmt::accumulate(
                    "tmp",
                    vec![Expr::int(0)],
                    Expr::call(Intrinsic::Exp, vec![Expr::load("x", vec![idx[0].clone()])]),
                ),
            ]
        })
        .loop_nest(&[("j", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::load("y", vec![idx[0].clone()])
                    / Expr::call(
                        Intrinsic::Max,
                        vec![
                            Expr::load("tmp", vec![Expr::int(0)]),
                            Expr::FloatConst(1e-6),
                        ],
                    ),
            )]
        })
        .build()
}

/// Layer normalization over a vector (mean/variance passes + normalize).
pub fn layer_norm(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("acc", [2])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![
                Stmt::accumulate(
                    "acc",
                    vec![Expr::int(0)],
                    Expr::load("x", vec![idx[0].clone()]),
                ),
                Stmt::accumulate(
                    "acc",
                    vec![Expr::int(1)],
                    Expr::load("x", vec![idx[0].clone()]) * Expr::load("x", vec![idx[0].clone()]),
                ),
            ]
        })
        .loop_nest(&[("j", n)], |idx| {
            let n_f = Expr::FloatConst(n as f64);
            let mean = Expr::load("acc", vec![Expr::int(0)]) / n_f.clone();
            let ex2 = Expr::load("acc", vec![Expr::int(1)]) / n_f;
            let var = ex2 - mean.clone() * mean.clone();
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                (Expr::load("x", vec![idx[0].clone()]) - mean)
                    / Expr::call(Intrinsic::Sqrt, vec![var + Expr::FloatConst(1e-5)]),
            )]
        })
        .build()
}

/// 2× nearest-neighbour upsampling.
pub fn upsample2x(name: &str, h: usize, w: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [h, w])
        .array_param("y", [2 * h, 2 * w])
        .loop_nest(&[("i", 2 * h), ("j", 2 * w)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone(), idx[1].clone()]),
                Expr::load(
                    "x",
                    vec![idx[0].clone() / Expr::int(2), idx[1].clone() / Expr::int(2)],
                ),
            )]
        })
        .build()
}

/// Residual addition `y = a + b`.
pub fn residual_add(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("a", [n])
        .array_param("b", [n])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::load("a", vec![idx[0].clone()]) + Expr::load("b", vec![idx[0].clone()]),
            )]
        })
        .build()
}

/// Dilated 1-D convolution with dilation `d`.
pub fn dilated_conv(name: &str, n: usize, k: usize, d: usize) -> Operator {
    let span = (k - 1) * d + 1;
    let on = n.saturating_sub(span) + 1;
    OperatorBuilder::new(name)
        .array_param("x", [n])
        .array_param("wgt", [k])
        .array_param("y", [n])
        .loop_nest(&[("i", on), ("j", k)], |idx| {
            vec![Stmt::accumulate(
                "y",
                vec![idx[0].clone()],
                Expr::load(
                    "x",
                    vec![idx[0].clone() + idx[1].clone() * Expr::int(d as i64)],
                ) * Expr::load("wgt", vec![idx[1].clone()]),
            )]
        })
        .build()
}

/// Input-sized sliding window (Class II: the `h`/`w` bounds are runtime
/// scalars — the paper's canonical input-adaptive operator).
pub fn dyn_window2d(name: &str, cap: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [cap, cap])
        .array_param("y", [cap, cap])
        .scalar_param("h")
        .scalar_param("w")
        .dyn_loop_nest(&[("i", Expr::var("h")), ("j", Expr::var("w"))], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone(), idx[1].clone()]),
                Expr::load("x", vec![idx[0].clone(), idx[1].clone()]) * Expr::int(2),
            )]
        })
        .build()
}

/// Sequence-length-bounded token mixing (Class II — NLP analogue of the
/// sliding window: `len` is a runtime scalar).
pub fn dyn_seq_mix(name: &str, cap: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [cap])
        .array_param("y", [cap])
        .scalar_param("len")
        .dyn_loop_nest(&[("i", Expr::var("len"))], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::load("x", vec![idx[0].clone()]) + Expr::load("x", vec![Expr::int(0)]),
            )]
        })
        .build()
}

/// Gather / embedding lookup: `y[i] = table[idx[i]]` (data-dependent
/// addressing; Class II through value dependence).
pub fn gather(name: &str, n: usize, vocab: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("table", [vocab])
        .array_param("ids", [n])
        .array_param("y", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[0].clone()]),
                Expr::load("table", vec![Expr::load("ids", vec![idx[0].clone()])]),
            )]
        })
        .build()
}

/// Value-dependent anchor filter (RoIAlign-style: heavy work only for
/// positive anchors — Class II through the branch).
pub fn anchor_filter(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("scores", [n])
        .array_param("rois", [n])
        .loop_nest(&[("i", n)], |idx| {
            vec![Stmt::if_then(
                Expr::binary(
                    BinOp::Gt,
                    Expr::load("scores", vec![idx[0].clone()]),
                    Expr::FloatConst(0.5),
                ),
                vec![Stmt::assign(
                    LValue::store("rois", vec![idx[0].clone()]),
                    Expr::call(
                        Intrinsic::Sigmoid,
                        vec![Expr::load("scores", vec![idx[0].clone()])],
                    ),
                )],
            )]
        })
        .build()
}

/// Matrix transpose (the paper's Class I exemplar).
pub fn transpose(name: &str, n: usize) -> Operator {
    OperatorBuilder::new(name)
        .array_param("x", [n, n])
        .array_param("y", [n, n])
        .loop_nest(&[("i", n), ("j", n)], |idx| {
            vec![Stmt::assign(
                LValue::store("y", vec![idx[1].clone(), idx[0].clone()]),
                Expr::load("x", vec![idx[0].clone(), idx[1].clone()]),
            )]
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::analysis::analyze_operator;
    use llmulator_ir::{InputData, OperatorClass, Program};

    fn runs(op: Operator, data: InputData) -> u64 {
        let p = Program::single_op(op);
        p.validate().expect("valid");
        llmulator_sim::simulate(&p, &data)
            .expect("simulates")
            .total_cycles
    }

    #[test]
    fn all_static_ops_simulate() {
        assert!(runs(conv2d("c", 8, 8, 3), InputData::new()) > 0);
        assert!(runs(gemm("g", 6, 6, 6), InputData::new()) > 0);
        assert!(runs(softmax("s", 8), InputData::new()) > 0);
        assert!(runs(layer_norm("l", 8), InputData::new()) > 0);
        assert!(runs(maxpool2d("m", 8, 8, 2), InputData::new()) > 0);
        assert!(runs(upsample2x("u", 4, 4), InputData::new()) > 0);
        assert!(runs(dilated_conv("d", 16, 3, 2), InputData::new()) > 0);
        assert!(runs(batch_norm("b", 8), InputData::new()) > 0);
        assert!(runs(residual_add("r", 8), InputData::new()) > 0);
        assert!(runs(pointwise("p", 8), InputData::new()) > 0);
        assert!(runs(gather("ga", 8, 32), InputData::new()) > 0);
        assert!(runs(transpose("t", 6), InputData::new()) > 0);
        assert!(runs(relu_op("re", 8), InputData::new()) > 0);
        assert!(runs(sigmoid_op("si", 8), InputData::new()) > 0);
        assert!(runs(anchor_filter("a", 8), InputData::new()) > 0);
    }

    #[test]
    fn dynamic_ops_respond_to_inputs() {
        let small = runs(
            dyn_window2d("w", 32),
            InputData::new().with("h", 4i64).with("w", 4i64),
        );
        let large = runs(
            dyn_window2d("w", 32),
            InputData::new().with("h", 24i64).with("w", 24i64),
        );
        assert!(large > small * 8, "{large} vs {small}");
        let s1 = runs(dyn_seq_mix("m", 64), InputData::new().with("len", 8i64));
        let s2 = runs(dyn_seq_mix("m", 64), InputData::new().with("len", 48i64));
        assert!(s2 > s1);
    }

    #[test]
    fn classification_matches_paper_examples() {
        assert_eq!(
            analyze_operator(&transpose("t", 8)).class,
            OperatorClass::ClassI
        );
        assert_eq!(
            analyze_operator(&dyn_window2d("w", 8)).class,
            OperatorClass::ClassII
        );
        assert_eq!(
            analyze_operator(&anchor_filter("a", 8)).class,
            OperatorClass::ClassII
        );
        assert_eq!(
            analyze_operator(&gemm("g", 4, 4, 4)).class,
            OperatorClass::ClassI
        );
    }

    #[test]
    fn gemm_computes_correct_product() {
        let p = Program::single_op(gemm("g", 2, 2, 2));
        let data = InputData::new()
            .with(
                "buf_a",
                llmulator_ir::Tensor::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]),
            )
            .with(
                "buf_b",
                llmulator_ir::Tensor::new(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]),
            );
        let r = llmulator_sim::simulate(&p, &data).expect("simulates");
        let c = r.buffer(&"buf_c".into()).expect("output");
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn softmax_normalizes() {
        let p = Program::single_op(softmax("s", 4));
        let data = InputData::new().with(
            "buf_x",
            llmulator_ir::Tensor::new(vec![4], vec![0.0, 1.0, 0.5, -0.5]),
        );
        let r = llmulator_sim::simulate(&p, &data).expect("simulates");
        let y = r.buffer(&"buf_y".into()).expect("output");
        let sum: f64 = y.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "softmax sums to 1, got {sum}");
    }
}
