//! Real-world accelerator dataflow variants (paper Sec. 7.4).
//!
//! The paper evaluates LLMulator on TPU v1 (weight-stationary), Eyeriss
//! (input-stationary) and ShiDianNao (output-stationary) by re-scheduling a
//! Polybench GEMM with the corresponding loop orders and mappings. We build
//! the same three loop-schedule variants.

use crate::workload::Workload;
use llmulator_ir::builder::OperatorBuilder;
use llmulator_ir::{Expr, InputData, LoopPragma, Program, Stmt};

const M: usize = 12;
const K: usize = 8;

/// Dataflow style of a spatial accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowStyle {
    /// Weights pinned in the PE array (TPU v1): reduction dimension
    /// outermost, spatial unroll over the output tile.
    WeightStationary,
    /// Inputs pinned (Eyeriss-like row stationary): input row reuse with the
    /// `i` dimension outermost and parallel mapping across rows.
    InputStationary,
    /// Outputs pinned (ShiDianNao): output tile innermost accumulation with
    /// full unroll on the reduction.
    OutputStationary,
}

impl DataflowStyle {
    /// Row label used in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            DataflowStyle::WeightStationary => "TPU",
            DataflowStyle::InputStationary => "Eyeriss",
            DataflowStyle::OutputStationary => "Shidiannao",
        }
    }
}

/// Builds the GEMM loop-schedule variant for a dataflow style.
pub fn gemm_variant(style: DataflowStyle) -> Workload {
    let name = style.label().to_lowercase();
    let op = match style {
        DataflowStyle::WeightStationary => {
            // k outermost (weights stream once), unrolled output tile.
            OperatorBuilder::new(format!("{name}_gemm"))
                .array_param("a", [M, K])
                .array_param("b", [K, M])
                .array_param("c", [M, M])
                .loop_nest_with_pragma(
                    &[("kk", K), ("i", M), ("j", M)],
                    LoopPragma::UnrollFull,
                    |idx| {
                        vec![Stmt::accumulate(
                            "c",
                            vec![idx[1].clone(), idx[2].clone()],
                            Expr::load("a", vec![idx[1].clone(), idx[0].clone()])
                                * Expr::load("b", vec![idx[0].clone(), idx[2].clone()]),
                        )]
                    },
                )
                .build()
        }
        DataflowStyle::InputStationary => {
            // i outermost, rows mapped across lanes.
            OperatorBuilder::new(format!("{name}_gemm"))
                .array_param("a", [M, K])
                .array_param("b", [K, M])
                .array_param("c", [M, M])
                .loop_nest_with_pragma(
                    &[("i", M), ("kk", K), ("j", M)],
                    LoopPragma::ParallelFor,
                    |idx| {
                        vec![Stmt::accumulate(
                            "c",
                            vec![idx[0].clone(), idx[2].clone()],
                            Expr::load("a", vec![idx[0].clone(), idx[1].clone()])
                                * Expr::load("b", vec![idx[1].clone(), idx[2].clone()]),
                        )]
                    },
                )
                .build()
        }
        DataflowStyle::OutputStationary => {
            // output tile outermost, reduction innermost and unrolled.
            OperatorBuilder::new(format!("{name}_gemm"))
                .array_param("a", [M, K])
                .array_param("b", [K, M])
                .array_param("c", [M, M])
                .stmt(Stmt::for_range(
                    "i",
                    Expr::int(M as i64),
                    vec![Stmt::for_range(
                        "j",
                        Expr::int(M as i64),
                        vec![Stmt::For(llmulator_ir::ForLoop {
                            var: "kk".into(),
                            lo: Expr::int(0),
                            hi: Expr::int(K as i64),
                            step: Expr::int(1),
                            pragma: LoopPragma::UnrollFull,
                            body: vec![Stmt::accumulate(
                                "c",
                                vec![Expr::var("i"), Expr::var("j")],
                                Expr::load("a", vec![Expr::var("i"), Expr::var("kk")])
                                    * Expr::load("b", vec![Expr::var("kk"), Expr::var("j")]),
                            )],
                        })],
                    )],
                ))
                .build()
        }
    };
    Workload::new(style.label(), Program::single_op(op), InputData::new())
}

/// All three accelerator variants, in the paper's row order.
pub fn all() -> Vec<Workload> {
    vec![
        gemm_variant(DataflowStyle::WeightStationary),
        gemm_variant(DataflowStyle::InputStationary),
        gemm_variant(DataflowStyle::OutputStationary),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_styles_simulate_with_distinct_costs() {
        let ws = all();
        assert_eq!(ws.len(), 3);
        let mut cycles = Vec::new();
        for w in &ws {
            let r = llmulator_sim::simulate(&w.program, &w.inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            cycles.push(r.total_cycles);
        }
        // Different schedules give different cycle counts.
        assert!(
            cycles[0] != cycles[1] || cycles[1] != cycles[2],
            "schedules must differ: {cycles:?}"
        );
    }

    #[test]
    fn labels_match_table3_rows() {
        let labels: Vec<&str> = [
            DataflowStyle::WeightStationary,
            DataflowStyle::InputStationary,
            DataflowStyle::OutputStationary,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert_eq!(labels, vec!["TPU", "Eyeriss", "Shidiannao"]);
    }

    #[test]
    fn variants_compute_the_same_product() {
        // All three schedules are the same math: same output values.
        let a = llmulator_ir::Tensor::from_fn(vec![M, K], |i| (i % 5) as f64);
        let b = llmulator_ir::Tensor::from_fn(vec![K, M], |i| (i % 3) as f64);
        let mut outputs = Vec::new();
        for w in all() {
            let data = InputData::new()
                .with("buf_a", a.clone())
                .with("buf_b", b.clone());
            let r = llmulator_sim::simulate(&w.program, &data).expect("simulates");
            outputs.push(r.buffer(&"buf_c".into()).expect("c").clone());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }
}
