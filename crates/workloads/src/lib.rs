//! # llmulator-workloads
//!
//! The evaluation workloads from LLMulator (MICRO 2025):
//!
//! * [`polybench`] — the ten Polybench kernels of Tables 3/4/11,
//! * [`modern`] — the fourteen image-processing and NLP workloads of
//!   Table 2 (operator graphs with input-adaptive control flow),
//! * [`accelerators`] — TPU v1 / Eyeriss / ShiDianNao GEMM loop-schedule
//!   variants (Sec. 7.4),
//! * [`stats`] — Table 2 statistics (text lengths, op counts, dynamic
//!   parameter counts),
//! * [`ops`] — the reusable operator constructor library behind them.
//!
//! ```
//! use llmulator_workloads::polybench;
//!
//! let kernels = polybench::all();
//! assert_eq!(kernels.len(), 10);
//! let report = llmulator_sim::simulate(&kernels[1].program, &kernels[1].inputs)?;
//! assert!(report.total_cycles > 0);
//! # Ok::<(), llmulator_sim::SimError>(())
//! ```

pub mod accelerators;
pub mod modern;
pub mod ops;
pub mod polybench;
pub mod stats;
pub mod workload;

pub use stats::{stats, WorkloadStats};
pub use workload::Workload;

#[cfg(test)]
mod tests {
    /// Every evaluation workload must stay clean under the static lint
    /// pass: the suite is the ground-truth corpus, and a kernel with dead
    /// stores or unreachable code would skew every MAPE table built on it.
    ///
    /// One advisory rule is exempt: `control-only-input-bound` fires on the
    /// time-stepped Polybench kernels because `tsteps` only scales loop trip
    /// counts — which is *intentional* there (the dynamic scalar that makes
    /// them input-adaptive, Table 11), so the corpus asserts the rule fires
    /// rather than silencing the kernels.
    #[test]
    fn every_workload_is_lint_clean() {
        let mut all = crate::polybench::all();
        all.extend(crate::modern::all());
        all.extend(crate::accelerators::all());
        assert!(!all.is_empty());
        let mut cost_only_bounds = 0usize;
        for w in &all {
            let report = llmulator_ir::lint_program(&w.program);
            let (expected, unexpected): (Vec<_>, Vec<_>) = report
                .lints
                .into_iter()
                .partition(|l| l.rule == llmulator_ir::LintRule::ControlOnlyInputBound);
            cost_only_bounds += expected.len();
            assert!(
                unexpected.is_empty(),
                "workload `{}` has lints: {:#?}",
                w.name,
                unexpected
            );
        }
        // The taint-backed rule must keep seeing the intentional cost-only
        // `tsteps` bounds in the time-loop kernels.
        assert!(
            cost_only_bounds >= 1,
            "expected at least one control-only-input-bound finding in the corpus"
        );
    }
}
