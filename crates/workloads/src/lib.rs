//! # llmulator-workloads
//!
//! The evaluation workloads from LLMulator (MICRO 2025):
//!
//! * [`polybench`] — the ten Polybench kernels of Tables 3/4/11,
//! * [`modern`] — the fourteen image-processing and NLP workloads of
//!   Table 2 (operator graphs with input-adaptive control flow),
//! * [`accelerators`] — TPU v1 / Eyeriss / ShiDianNao GEMM loop-schedule
//!   variants (Sec. 7.4),
//! * [`stats`] — Table 2 statistics (text lengths, op counts, dynamic
//!   parameter counts),
//! * [`ops`] — the reusable operator constructor library behind them.
//!
//! ```
//! use llmulator_workloads::polybench;
//!
//! let kernels = polybench::all();
//! assert_eq!(kernels.len(), 10);
//! let report = llmulator_sim::simulate(&kernels[1].program, &kernels[1].inputs)?;
//! assert!(report.total_cycles > 0);
//! # Ok::<(), llmulator_sim::SimError>(())
//! ```

pub mod accelerators;
pub mod modern;
pub mod ops;
pub mod polybench;
pub mod stats;
pub mod workload;

pub use stats::{stats, WorkloadStats};
pub use workload::Workload;

#[cfg(test)]
mod tests {
    /// Every evaluation workload must stay clean under the static lint
    /// pass: the suite is the ground-truth corpus, and a kernel with dead
    /// stores or unreachable code would skew every MAPE table built on it.
    #[test]
    fn every_workload_is_lint_clean() {
        let mut all = crate::polybench::all();
        all.extend(crate::modern::all());
        all.extend(crate::accelerators::all());
        assert!(!all.is_empty());
        for w in &all {
            let report = llmulator_ir::lint_program(&w.program);
            assert!(
                report.lints.is_empty(),
                "workload `{}` has lints: {:#?}",
                w.name,
                report.lints
            );
        }
    }
}
