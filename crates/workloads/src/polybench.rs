//! The ten Polybench kernels used throughout the paper's evaluation
//! (Tables 3, 4 and 11), rebuilt as dataflow IR.
//!
//! Stencil/time-iterated kernels take their time-step count as a *runtime
//! scalar* (`tsteps`), making them input-adaptive — the property Table 11
//! exercises with profiles. Sizes are scaled down from the Polybench
//! defaults so profiling stays interactive; structure (loop shapes,
//! dependences, division/sqrt usage) follows the reference kernels.

use crate::workload::Workload;
use llmulator_ir::builder::OperatorBuilder;
use llmulator_ir::{Expr, InputData, Intrinsic, LValue, Program, Stmt};

const N: usize = 12;

fn time_loop_inputs() -> InputData {
    InputData::new().with("tsteps", 4i64)
}

/// `adi`: alternating-direction implicit solver — per time step a column
/// sweep then a row sweep, each with divisions (the kernel Timeloop cannot
/// express).
pub fn adi() -> Workload {
    let op = OperatorBuilder::new("adi_kernel")
        .array_param("u", [N, N])
        .array_param("v", [N, N])
        .scalar_param("tsteps")
        .dyn_loop_nest(&[("t", Expr::var("tsteps"))], |_| {
            vec![
                // column sweep
                Stmt::for_range(
                    "i",
                    Expr::int((N - 2) as i64),
                    vec![Stmt::for_range(
                        "j",
                        Expr::int((N - 2) as i64),
                        vec![Stmt::assign(
                            LValue::store(
                                "v",
                                vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                            ),
                            (Expr::load("u", vec![Expr::var("i"), Expr::var("j") + Expr::int(1)])
                                + Expr::load(
                                    "u",
                                    vec![
                                        Expr::var("i") + Expr::int(2),
                                        Expr::var("j") + Expr::int(1),
                                    ],
                                ))
                                / Expr::FloatConst(2.0),
                        )],
                    )],
                ),
                // row sweep
                Stmt::for_range(
                    "i",
                    Expr::int((N - 2) as i64),
                    vec![Stmt::for_range(
                        "j",
                        Expr::int((N - 2) as i64),
                        vec![Stmt::assign(
                            LValue::store(
                                "u",
                                vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                            ),
                            (Expr::load("v", vec![Expr::var("i") + Expr::int(1), Expr::var("j")])
                                + Expr::load(
                                    "v",
                                    vec![
                                        Expr::var("i") + Expr::int(1),
                                        Expr::var("j") + Expr::int(2),
                                    ],
                                ))
                                / Expr::FloatConst(2.0),
                        )],
                    )],
                ),
            ]
        })
        .build();
    Workload::new("adi", Program::single_op(op), time_loop_inputs())
}

/// `atax`: `y = Aᵀ(Ax)`.
pub fn atax() -> Workload {
    let op = OperatorBuilder::new("atax_kernel")
        .array_param("a", [N, N])
        .array_param("x", [N])
        .array_param("tmp", [N])
        .array_param("y", [N])
        .loop_nest(&[("i", N), ("j", N)], |idx| {
            vec![Stmt::accumulate(
                "tmp",
                vec![idx[0].clone()],
                Expr::load("a", vec![idx[0].clone(), idx[1].clone()])
                    * Expr::load("x", vec![idx[1].clone()]),
            )]
        })
        .loop_nest(&[("i2", N), ("j2", N)], |idx| {
            vec![Stmt::accumulate(
                "y",
                vec![idx[1].clone()],
                Expr::load("a", vec![idx[0].clone(), idx[1].clone()])
                    * Expr::load("tmp", vec![idx[0].clone()]),
            )]
        })
        .build();
    Workload::new("atax", Program::single_op(op), InputData::new())
}

/// `bicg`: simultaneous `s = Aᵀr` and `q = Ap`.
pub fn bicg() -> Workload {
    let op = OperatorBuilder::new("bicg_kernel")
        .array_param("a", [N, N])
        .array_param("r", [N])
        .array_param("p", [N])
        .array_param("s", [N])
        .array_param("q", [N])
        .loop_nest(&[("i", N), ("j", N)], |idx| {
            vec![
                Stmt::accumulate(
                    "s",
                    vec![idx[1].clone()],
                    Expr::load("r", vec![idx[0].clone()])
                        * Expr::load("a", vec![idx[0].clone(), idx[1].clone()]),
                ),
                Stmt::accumulate(
                    "q",
                    vec![idx[0].clone()],
                    Expr::load("a", vec![idx[0].clone(), idx[1].clone()])
                        * Expr::load("p", vec![idx[1].clone()]),
                ),
            ]
        })
        .build();
    Workload::new("bicg", Program::single_op(op), InputData::new())
}

/// `correlation`: mean/stddev passes then the correlation matrix.
pub fn correlation() -> Workload {
    let op = OperatorBuilder::new("correlation_kernel")
        .array_param("data", [N, N])
        .array_param("mean", [N])
        .array_param("stddev", [N])
        .array_param("corr", [N, N])
        .loop_nest(&[("j", N), ("i", N)], |idx| {
            vec![Stmt::accumulate(
                "mean",
                vec![idx[0].clone()],
                Expr::load("data", vec![idx[1].clone(), idx[0].clone()])
                    / Expr::FloatConst(N as f64),
            )]
        })
        .loop_nest(&[("j2", N), ("i2", N)], |idx| {
            let centered = Expr::load("data", vec![idx[1].clone(), idx[0].clone()])
                - Expr::load("mean", vec![idx[0].clone()]);
            vec![Stmt::accumulate(
                "stddev",
                vec![idx[0].clone()],
                centered.clone() * centered / Expr::FloatConst(N as f64),
            )]
        })
        .loop_nest(&[("j3", N)], |idx| {
            vec![Stmt::assign(
                LValue::store("stddev", vec![idx[0].clone()]),
                Expr::call(
                    Intrinsic::Sqrt,
                    vec![Expr::load("stddev", vec![idx[0].clone()])],
                ),
            )]
        })
        .loop_nest(&[("i4", N), ("j4", N), ("k4", N)], |idx| {
            vec![Stmt::accumulate(
                "corr",
                vec![idx[0].clone(), idx[1].clone()],
                (Expr::load("data", vec![idx[2].clone(), idx[0].clone()])
                    - Expr::load("mean", vec![idx[0].clone()]))
                    * (Expr::load("data", vec![idx[2].clone(), idx[1].clone()])
                        - Expr::load("mean", vec![idx[1].clone()])),
            )]
        })
        .build();
    Workload::new("correlation", Program::single_op(op), InputData::new())
}

/// `covariance`: mean pass then the covariance matrix.
pub fn covariance() -> Workload {
    let op = OperatorBuilder::new("covariance_kernel")
        .array_param("data", [N, N])
        .array_param("mean", [N])
        .array_param("cov", [N, N])
        .loop_nest(&[("j", N), ("i", N)], |idx| {
            vec![Stmt::accumulate(
                "mean",
                vec![idx[0].clone()],
                Expr::load("data", vec![idx[1].clone(), idx[0].clone()])
                    / Expr::FloatConst(N as f64),
            )]
        })
        .loop_nest(&[("i2", N), ("j2", N), ("k2", N)], |idx| {
            vec![Stmt::accumulate(
                "cov",
                vec![idx[0].clone(), idx[1].clone()],
                (Expr::load("data", vec![idx[2].clone(), idx[0].clone()])
                    - Expr::load("mean", vec![idx[0].clone()]))
                    * (Expr::load("data", vec![idx[2].clone(), idx[1].clone()])
                        - Expr::load("mean", vec![idx[1].clone()]))
                    / Expr::FloatConst((N - 1) as f64),
            )]
        })
        .build();
    Workload::new("covariance", Program::single_op(op), InputData::new())
}

/// `deriche`: recursive edge-detection filter (horizontal + vertical passes
/// with exponential coefficients).
pub fn deriche() -> Workload {
    let op = OperatorBuilder::new("deriche_kernel")
        .array_param("img", [N, N])
        .array_param("y1", [N, N])
        .array_param("out", [N, N])
        .loop_nest(&[("i", N), ("j", N)], |idx| {
            vec![Stmt::assign(
                LValue::store("y1", vec![idx[0].clone(), idx[1].clone()]),
                Expr::load("img", vec![idx[0].clone(), idx[1].clone()])
                    * Expr::call(Intrinsic::Exp, vec![Expr::FloatConst(-0.25)])
                    + Expr::load("y1", vec![idx[0].clone(), idx[1].clone()])
                        * Expr::FloatConst(0.5),
            )]
        })
        .loop_nest(&[("j2", N), ("i2", N)], |idx| {
            vec![Stmt::assign(
                LValue::store("out", vec![idx[1].clone(), idx[0].clone()]),
                Expr::load("y1", vec![idx[1].clone(), idx[0].clone()])
                    * Expr::call(Intrinsic::Exp, vec![Expr::FloatConst(-0.25)])
                    + Expr::load("out", vec![idx[1].clone(), idx[0].clone()])
                        * Expr::FloatConst(0.5),
            )]
        })
        .build();
    Workload::new("deriche", Program::single_op(op), InputData::new())
}

/// `fdtd-2d`: finite-difference time-domain over `tsteps` field updates.
pub fn fdtd_2d() -> Workload {
    let op = OperatorBuilder::new("fdtd2d_kernel")
        .array_param("ex", [N, N])
        .array_param("ey", [N, N])
        .array_param("hz", [N, N])
        .scalar_param("tsteps")
        .dyn_loop_nest(&[("t", Expr::var("tsteps"))], |_| {
            vec![
                Stmt::for_range(
                    "i",
                    Expr::int((N - 1) as i64),
                    vec![Stmt::for_range(
                        "j",
                        Expr::int(N as i64),
                        vec![Stmt::assign(
                            LValue::store(
                                "ey",
                                vec![Expr::var("i") + Expr::int(1), Expr::var("j")],
                            ),
                            Expr::load("ey", vec![Expr::var("i") + Expr::int(1), Expr::var("j")])
                                - (Expr::load(
                                    "hz",
                                    vec![Expr::var("i") + Expr::int(1), Expr::var("j")],
                                ) - Expr::load("hz", vec![Expr::var("i"), Expr::var("j")]))
                                    * Expr::FloatConst(0.5),
                        )],
                    )],
                ),
                Stmt::for_range(
                    "i2",
                    Expr::int(N as i64),
                    vec![Stmt::for_range(
                        "j2",
                        Expr::int((N - 1) as i64),
                        vec![Stmt::assign(
                            LValue::store(
                                "ex",
                                vec![Expr::var("i2"), Expr::var("j2") + Expr::int(1)],
                            ),
                            Expr::load("ex", vec![Expr::var("i2"), Expr::var("j2") + Expr::int(1)])
                                - (Expr::load(
                                    "hz",
                                    vec![Expr::var("i2"), Expr::var("j2") + Expr::int(1)],
                                ) - Expr::load("hz", vec![Expr::var("i2"), Expr::var("j2")]))
                                    * Expr::FloatConst(0.5),
                        )],
                    )],
                ),
                Stmt::for_range(
                    "i3",
                    Expr::int((N - 1) as i64),
                    vec![Stmt::for_range(
                        "j3",
                        Expr::int((N - 1) as i64),
                        vec![Stmt::assign(
                            LValue::store("hz", vec![Expr::var("i3"), Expr::var("j3")]),
                            Expr::load("hz", vec![Expr::var("i3"), Expr::var("j3")])
                                - (Expr::load(
                                    "ex",
                                    vec![Expr::var("i3"), Expr::var("j3") + Expr::int(1)],
                                ) - Expr::load("ex", vec![Expr::var("i3"), Expr::var("j3")])
                                    + Expr::load(
                                        "ey",
                                        vec![Expr::var("i3") + Expr::int(1), Expr::var("j3")],
                                    )
                                    - Expr::load("ey", vec![Expr::var("i3"), Expr::var("j3")]))
                                    * Expr::FloatConst(0.7),
                        )],
                    )],
                ),
            ]
        })
        .build();
    Workload::new("fdtd-2d", Program::single_op(op), time_loop_inputs())
}

/// `heat-3d`: 3-D heat-equation stencil over `tsteps`.
pub fn heat_3d() -> Workload {
    let m = 8usize;
    let stencil = |src: &str, dst: &str| {
        let load = |di: i64, dj: i64, dk: i64| {
            Expr::load(
                src,
                vec![
                    Expr::var("i") + Expr::int(1 + di),
                    Expr::var("j") + Expr::int(1 + dj),
                    Expr::var("k") + Expr::int(1 + dk),
                ],
            )
        };
        Stmt::for_range(
            "i",
            Expr::int((m - 2) as i64),
            vec![Stmt::for_range(
                "j",
                Expr::int((m - 2) as i64),
                vec![Stmt::for_range(
                    "k",
                    Expr::int((m - 2) as i64),
                    vec![Stmt::assign(
                        LValue::store(
                            dst,
                            vec![
                                Expr::var("i") + Expr::int(1),
                                Expr::var("j") + Expr::int(1),
                                Expr::var("k") + Expr::int(1),
                            ],
                        ),
                        (load(-1, 0, 0)
                            + load(1, 0, 0)
                            + load(0, -1, 0)
                            + load(0, 1, 0)
                            + load(0, 0, -1)
                            + load(0, 0, 1))
                            / Expr::FloatConst(6.0),
                    )],
                )],
            )],
        )
    };
    let op = OperatorBuilder::new("heat3d_kernel")
        .array_param("a", [m, m, m])
        .array_param("b", [m, m, m])
        .scalar_param("tsteps")
        .dyn_loop_nest(&[("t", Expr::var("tsteps"))], move |_| {
            vec![stencil("a", "b"), stencil("b", "a")]
        })
        .build();
    Workload::new("heat-3d", Program::single_op(op), time_loop_inputs())
}

/// `jacobi-2d`: 5-point stencil ping-pong over `tsteps`.
pub fn jacobi_2d() -> Workload {
    let stencil = |src: &str, dst: &str| {
        Stmt::for_range(
            "i",
            Expr::int((N - 2) as i64),
            vec![Stmt::for_range(
                "j",
                Expr::int((N - 2) as i64),
                vec![Stmt::assign(
                    LValue::store(
                        dst,
                        vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                    ),
                    (Expr::load(
                        src,
                        vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                    ) + Expr::load(src, vec![Expr::var("i"), Expr::var("j") + Expr::int(1)])
                        + Expr::load(
                            src,
                            vec![Expr::var("i") + Expr::int(2), Expr::var("j") + Expr::int(1)],
                        )
                        + Expr::load(src, vec![Expr::var("i") + Expr::int(1), Expr::var("j")])
                        + Expr::load(
                            src,
                            vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(2)],
                        ))
                        * Expr::FloatConst(0.2),
                )],
            )],
        )
    };
    let op = OperatorBuilder::new("jacobi2d_kernel")
        .array_param("a", [N, N])
        .array_param("b", [N, N])
        .scalar_param("tsteps")
        .dyn_loop_nest(&[("t", Expr::var("tsteps"))], move |_| {
            vec![stencil("a", "b"), stencil("b", "a")]
        })
        .build();
    Workload::new("jacobi-2d", Program::single_op(op), time_loop_inputs())
}

/// `seidel-2d`: in-place Gauss–Seidel sweep over `tsteps`.
pub fn seidel_2d() -> Workload {
    let op = OperatorBuilder::new("seidel2d_kernel")
        .array_param("a", [N, N])
        .scalar_param("tsteps")
        .dyn_loop_nest(&[("t", Expr::var("tsteps"))], |_| {
            vec![Stmt::for_range(
                "i",
                Expr::int((N - 2) as i64),
                vec![Stmt::for_range(
                    "j",
                    Expr::int((N - 2) as i64),
                    vec![Stmt::assign(
                        LValue::store(
                            "a",
                            vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                        ),
                        (Expr::load("a", vec![Expr::var("i"), Expr::var("j") + Expr::int(1)])
                            + Expr::load("a", vec![Expr::var("i") + Expr::int(1), Expr::var("j")])
                            + Expr::load(
                                "a",
                                vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(1)],
                            )
                            + Expr::load(
                                "a",
                                vec![Expr::var("i") + Expr::int(1), Expr::var("j") + Expr::int(2)],
                            )
                            + Expr::load(
                                "a",
                                vec![Expr::var("i") + Expr::int(2), Expr::var("j") + Expr::int(1)],
                            ))
                            / Expr::FloatConst(5.0),
                    )],
                )],
            )]
        })
        .build();
    Workload::new("seidel-2d", Program::single_op(op), time_loop_inputs())
}

/// All ten kernels, in the paper's Table 3 row order.
pub fn all() -> Vec<Workload> {
    vec![
        adi(),
        atax(),
        bicg(),
        correlation(),
        covariance(),
        deriche(),
        fdtd_2d(),
        heat_3d(),
        jacobi_2d(),
        seidel_2d(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_kernels_simulate() {
        let kernels = all();
        assert_eq!(kernels.len(), 10);
        for w in &kernels {
            let r = llmulator_sim::simulate(&w.program, &w.inputs)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(r.total_cycles > 0, "{}", w.name);
        }
    }

    #[test]
    fn names_match_paper_rows() {
        let names: Vec<String> = all().into_iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "adi",
                "atax",
                "bicg",
                "correlation",
                "covariance",
                "deriche",
                "fdtd-2d",
                "heat-3d",
                "jacobi-2d",
                "seidel-2d"
            ]
        );
    }

    #[test]
    fn time_loop_kernels_scale_with_tsteps() {
        for w in [adi(), fdtd_2d(), heat_3d(), jacobi_2d(), seidel_2d()] {
            let short = llmulator_sim::simulate(&w.program, &w.scaled_inputs(0.5))
                .expect("short")
                .total_cycles;
            let long = llmulator_sim::simulate(&w.program, &w.scaled_inputs(2.0))
                .expect("long")
                .total_cycles;
            assert!(long > short, "{}: {long} > {short}", w.name);
        }
    }

    #[test]
    fn adi_is_not_a_perfect_nest() {
        // The paper highlights that Timeloop cannot express adi.
        let w = adi();
        let op = &w.program.operators[0];
        // Top level is a dynamic time loop containing two sweeps.
        assert!(op.loop_depth() >= 3);
        let report = llmulator_ir::analysis::analyze_operator(op);
        assert_eq!(report.class, llmulator_ir::OperatorClass::ClassII);
    }
}
