//! The named-workload wrapper shared by the Polybench and modern suites.

use llmulator_ir::{InputData, Program};
use serde::{Deserialize, Serialize};

/// A named evaluation workload with default runtime inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Short identifier used in table rows (e.g. `"adi"`, `"Tab. 2-6"`).
    pub name: String,
    /// The dataflow program.
    pub program: Program,
    /// Default runtime inputs covering every graph parameter.
    pub inputs: InputData,
}

impl Workload {
    /// Creates a workload, validating the program eagerly.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation — workload definitions are
    /// static data and must be internally consistent.
    pub fn new(name: impl Into<String>, program: Program, inputs: InputData) -> Workload {
        let name = name.into();
        program
            .validate()
            .unwrap_or_else(|e| panic!("workload `{name}` is invalid: {e}"));
        Workload {
            name,
            program,
            inputs,
        }
    }

    /// Inputs with every integer scalar scaled by `factor` (the paper's
    /// ±50% input-variation protocol), minimum 1.
    pub fn scaled_inputs(&self, factor: f64) -> InputData {
        self.inputs
            .iter()
            .map(|(k, v)| {
                let scaled = match v {
                    llmulator_ir::Value::Int(i) => {
                        llmulator_ir::Value::Int(((*i as f64 * factor).round() as i64).max(1))
                    }
                    other => other.clone(),
                };
                (k.clone(), scaled)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::builder::OperatorBuilder;
    use llmulator_ir::{Expr, LValue, Stmt};

    #[test]
    fn scaled_inputs_scale_ints_only() {
        let op = OperatorBuilder::new("f")
            .array_param("a", [4])
            .loop_nest(&[("i", 4)], |idx| {
                vec![Stmt::assign(
                    LValue::store("a", vec![idx[0].clone()]),
                    Expr::int(0),
                )]
            })
            .build();
        let w = Workload::new(
            "w",
            Program::single_op(op),
            InputData::new().with("n", 10i64).with("x", 2.5f64),
        );
        let scaled = w.scaled_inputs(1.5);
        assert_eq!(scaled.get(&"n".into()), Some(&llmulator_ir::Value::Int(15)));
        assert_eq!(
            scaled.get(&"x".into()),
            Some(&llmulator_ir::Value::Float(2.5))
        );
    }
}
