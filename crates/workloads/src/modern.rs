//! The fourteen modern workloads of the paper's Table 2: image-processing
//! pipelines (1–9) and NLP transformer stacks (10–14), rebuilt as dataflow
//! graphs over the operator library in [`crate::ops`].
//!
//! Structural properties follow the paper's table — operator counts per
//! graph, presence of dynamic control-flow parameters (runtime image/text
//! sizes, value-dependent anchors) — at reduced tensor extents so profiling
//! stays interactive.

use crate::ops;
use crate::workload::Workload;
use llmulator_ir::{
    Arg, BufferDecl, DataflowGraph, Dim, HardwareParams, Ident, InputData, Invocation, Operator,
    ParamKind, Program,
};

/// Incremental graph builder used by the workload definitions.
#[derive(Debug)]
struct Chain {
    graph: DataflowGraph,
    ops: Vec<Operator>,
}

impl Chain {
    fn new() -> Chain {
        Chain {
            graph: DataflowGraph::new("graph"),
            ops: Vec::new(),
        }
    }

    fn buffer(&mut self, name: &str, dims: &[usize]) -> Ident {
        let id = Ident::new(name);
        if self.graph.buffer(&id).is_none() {
            self.graph.buffers.push(BufferDecl {
                name: id.clone(),
                dims: dims.iter().map(|&d| Dim::Const(d)).collect(),
            });
        }
        id
    }

    fn param(&mut self, name: &str) -> Ident {
        let id = Ident::new(name);
        if !self.graph.params.contains(&id) {
            self.graph.params.push(id.clone());
        }
        id
    }

    /// Invokes `op` with buffers/params matched positionally to its
    /// signature: array params consume `arrays` in order, scalar params
    /// consume `scalars` in order.
    fn invoke(&mut self, op: Operator, arrays: &[&Ident], scalars: &[&Ident]) {
        let mut a = arrays.iter();
        let mut s = scalars.iter();
        let args: Vec<Arg> = op
            .params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Array { .. } => {
                    Arg::Buffer((*a.next().expect("buffer for array param")).clone())
                }
                ParamKind::Scalar => Arg::var((*s.next().expect("scalar for param")).clone()),
            })
            .collect();
        self.graph
            .invocations
            .push(Invocation::new(op.name.clone(), args));
        if !self.ops.iter().any(|o| o.name == op.name) {
            self.ops.push(op);
        }
    }

    fn build(self) -> Program {
        Program::new(self.graph, self.ops, HardwareParams::default())
    }
}

const IMG: usize = 12; // image side
const FLAT: usize = IMG * IMG; // flattened feature size
const SEQ: usize = 8; // token count
const DM: usize = 8; // model width

fn img_inputs() -> InputData {
    InputData::new().with("h", 8i64).with("w", 8i64)
}

fn seq_inputs() -> InputData {
    InputData::new().with("len", 6i64)
}

/// Tab. 2-1 — image normalization + CNN classifier (8 ops, dynamic input
/// size).
pub fn image_norm_cnn() -> Workload {
    let mut c = Chain::new();
    let img = c.buffer("img", &[IMG, IMG]);
    let resized = c.buffer("resized", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(
        ops::dyn_window2d("resize", IMG),
        &[&img, &resized],
        &[&h, &w],
    );
    let k = c.buffer("k1", &[3, 3]);
    let f1 = c.buffer("f1", &[IMG, IMG]);
    c.invoke(ops::conv2d("conv1", IMG, IMG, 3), &[&resized, &k, &f1], &[]);
    let f1f = c.buffer("f1f", &[FLAT]);
    c.invoke(ops::relu_op("relu1", FLAT), &[&f1, &f1f], &[]);
    let stats = c.buffer("bnstats", &[4]);
    let f1n = c.buffer("f1n", &[FLAT]);
    c.invoke(ops::batch_norm("bn1", FLAT), &[&f1f, &stats, &f1n], &[]);
    let pooled = c.buffer("pooled", &[IMG / 2, IMG / 2]);
    c.invoke(ops::maxpool2d("pool1", IMG, IMG, 2), &[&f1n, &pooled], &[]);
    let wfc = c.buffer("wfc", &[IMG / 2, SEQ]);
    let logits = c.buffer("logits", &[IMG / 2, SEQ]);
    c.invoke(
        ops::gemm("fc", IMG / 2, SEQ, IMG / 2),
        &[&pooled, &wfc, &logits],
        &[],
    );
    let tmp = c.buffer("smtmp", &[1]);
    let probs = c.buffer("probs", &[SEQ]);
    c.invoke(ops::softmax("softmax1", SEQ), &[&logits, &tmp, &probs], &[]);
    let out = c.buffer("out", &[SEQ]);
    c.invoke(ops::relu_op("relu2", SEQ), &[&probs, &out], &[]);
    Workload::new("Tab. 2-1", c.build(), img_inputs())
}

/// Tab. 2-2 — residual block + depthwise separable convolution (6 ops).
pub fn rb_dsc() -> Workload {
    let mut c = Chain::new();
    let x = c.buffer("x", &[IMG, IMG]);
    let resized = c.buffer("resized", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(ops::dyn_window2d("resize", IMG), &[&x, &resized], &[&h, &w]);
    let kd = c.buffer("kd", &[3, 3]);
    let dw = c.buffer("dw", &[IMG, IMG]);
    c.invoke(
        ops::depthwise_conv("dwconv", IMG, IMG, 3),
        &[&resized, &kd, &dw],
        &[],
    );
    let wp = c.buffer("wp", &[1]);
    let pw = c.buffer("pw", &[FLAT]);
    c.invoke(ops::pointwise("pwconv", FLAT), &[&dw, &wp, &pw], &[]);
    let stats = c.buffer("bnstats", &[4]);
    let bn = c.buffer("bn", &[FLAT]);
    c.invoke(ops::batch_norm("bn", FLAT), &[&pw, &stats, &bn], &[]);
    let act = c.buffer("act", &[FLAT]);
    c.invoke(ops::relu_op("relu", FLAT), &[&bn, &act], &[]);
    let out = c.buffer("out", &[FLAT]);
    c.invoke(ops::residual_add("skip", FLAT), &[&act, &x, &out], &[]);
    Workload::new("Tab. 2-2", c.build(), img_inputs())
}

/// Tab. 2-3 — spatial pyramid pooling + feature fusion (8 ops).
pub fn spp_fusion() -> Workload {
    let mut c = Chain::new();
    let x = c.buffer("x", &[IMG, IMG]);
    let resized = c.buffer("resized", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(ops::dyn_window2d("resize", IMG), &[&x, &resized], &[&h, &w]);
    let k = c.buffer("k", &[3, 3]);
    let f = c.buffer("f", &[IMG, IMG]);
    c.invoke(ops::conv2d("conv", IMG, IMG, 3), &[&resized, &k, &f], &[]);
    let p2 = c.buffer("p2", &[IMG / 2, IMG / 2]);
    c.invoke(ops::maxpool2d("pool2", IMG, IMG, 2), &[&f, &p2], &[]);
    let p4 = c.buffer("p4", &[IMG / 4, IMG / 4]);
    c.invoke(ops::maxpool2d("pool4", IMG, IMG, 4), &[&f, &p4], &[]);
    let p2f = c.buffer("p2f", &[FLAT / 4]);
    c.invoke(ops::relu_op("relu2f", FLAT / 4), &[&p2, &p2f], &[]);
    let p4f = c.buffer("p4f", &[FLAT / 16]);
    c.invoke(ops::relu_op("relu4f", FLAT / 16), &[&p4, &p4f], &[]);
    let fused = c.buffer("fused", &[FLAT / 16]);
    c.invoke(
        ops::residual_add("fuse", FLAT / 16),
        &[&p2f, &p4f, &fused],
        &[],
    );
    let out = c.buffer("out", &[FLAT / 16]);
    c.invoke(ops::sigmoid_op("gate", FLAT / 16), &[&fused, &out], &[]);
    Workload::new("Tab. 2-3", c.build(), img_inputs())
}

/// Tab. 2-4 — CBAM channel+spatial attention (12 ops, many value-dependent
/// gates).
pub fn cbam_attention() -> Workload {
    let mut c = Chain::new();
    let x = c.buffer("x", &[FLAT]);
    // channel attention
    let wa = c.buffer("wa", &[1]);
    let sq = c.buffer("sq", &[FLAT]);
    c.invoke(ops::pointwise("squeeze", FLAT), &[&x, &wa, &sq], &[]);
    let a1 = c.buffer("a1", &[FLAT]);
    c.invoke(ops::relu_op("ca_relu", FLAT), &[&sq, &a1], &[]);
    let g1 = c.buffer("g1", &[FLAT]);
    c.invoke(ops::sigmoid_op("ca_gate", FLAT), &[&a1, &g1], &[]);
    let ca = c.buffer("ca", &[FLAT]);
    c.invoke(ops::residual_add("ca_apply", FLAT), &[&x, &g1, &ca], &[]);
    let roi = c.buffer("roi", &[FLAT]);
    c.invoke(ops::anchor_filter("ca_sel", FLAT), &[&ca, &roi], &[]);
    // spatial attention
    let k = c.buffer("k", &[3, 3]);
    let sa = c.buffer("sa", &[IMG, IMG]);
    c.invoke(ops::conv2d("sa_conv", IMG, IMG, 3), &[&roi, &k, &sa], &[]);
    let g2 = c.buffer("g2", &[FLAT]);
    c.invoke(ops::sigmoid_op("sa_gate", FLAT), &[&sa, &g2], &[]);
    let sel = c.buffer("sel", &[FLAT]);
    c.invoke(ops::anchor_filter("sa_sel", FLAT), &[&g2, &sel], &[]);
    let resized = c.buffer("resized", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(ops::dyn_window2d("crop", IMG), &[&sel, &resized], &[&h, &w]);
    let stats = c.buffer("bnstats", &[4]);
    let bn = c.buffer("bn", &[FLAT]);
    c.invoke(ops::batch_norm("bn", FLAT), &[&resized, &stats, &bn], &[]);
    let fused = c.buffer("fused", &[FLAT]);
    c.invoke(ops::residual_add("fuse", FLAT), &[&bn, &x, &fused], &[]);
    let out = c.buffer("out", &[FLAT]);
    c.invoke(ops::relu_op("out_relu", FLAT), &[&fused, &out], &[]);
    Workload::new("Tab. 2-4", c.build(), img_inputs())
}

/// Tab. 2-5 — anchor generation + RoIAlign (5 ops, heavily input-driven).
pub fn anchor_roialign() -> Workload {
    let mut c = Chain::new();
    let feat = c.buffer("feat", &[IMG, IMG]);
    let k = c.buffer("k", &[3, 3]);
    let scores = c.buffer("scores", &[IMG, IMG]);
    c.invoke(ops::conv2d("rpn", IMG, IMG, 3), &[&feat, &k, &scores], &[]);
    let rois = c.buffer("rois", &[FLAT]);
    c.invoke(ops::anchor_filter("anchors", FLAT), &[&scores, &rois], &[]);
    let aligned = c.buffer("aligned", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(
        ops::dyn_window2d("roialign", IMG),
        &[&rois, &aligned],
        &[&h, &w],
    );
    let ids = c.buffer("ids", &[SEQ]);
    let sampled = c.buffer("sampled", &[SEQ]);
    c.invoke(
        ops::gather("sample", SEQ, FLAT),
        &[&aligned, &ids, &sampled],
        &[],
    );
    let pooled = c.buffer("pooled", &[IMG / 2, IMG / 2]);
    c.invoke(
        ops::maxpool2d("pool", IMG, IMG, 2),
        &[&aligned, &pooled],
        &[],
    );
    Workload::new("Tab. 2-5", c.build(), img_inputs())
}

/// Tab. 2-6 — GAN generator + super-resolution upsampling (13 ops).
pub fn gan_superres() -> Workload {
    let mut c = Chain::new();
    let z = c.buffer("z", &[IMG, IMG]);
    let k1 = c.buffer("k1", &[3, 3]);
    let g1 = c.buffer("g1", &[IMG, IMG]);
    c.invoke(ops::conv2d("gconv1", IMG, IMG, 3), &[&z, &k1, &g1], &[]);
    let a1 = c.buffer("a1", &[FLAT]);
    c.invoke(ops::relu_op("grelu1", FLAT), &[&g1, &a1], &[]);
    let stats = c.buffer("bn1s", &[4]);
    let b1 = c.buffer("b1", &[FLAT]);
    c.invoke(ops::batch_norm("gbn1", FLAT), &[&a1, &stats, &b1], &[]);
    let up1 = c.buffer("up1", &[2 * IMG, 2 * IMG]);
    c.invoke(ops::upsample2x("up1", IMG, IMG), &[&b1, &up1], &[]);
    let k2 = c.buffer("k2", &[3, 3]);
    let g2 = c.buffer("g2", &[2 * IMG, 2 * IMG]);
    c.invoke(
        ops::conv2d("gconv2", 2 * IMG, 2 * IMG, 3),
        &[&up1, &k2, &g2],
        &[],
    );
    let a2 = c.buffer("a2", &[4 * FLAT]);
    c.invoke(ops::relu_op("grelu2", 4 * FLAT), &[&g2, &a2], &[]);
    let up2 = c.buffer("up2", &[4 * IMG, 4 * IMG]);
    c.invoke(ops::upsample2x("up2", 2 * IMG, 2 * IMG), &[&a2, &up2], &[]);
    let k3 = c.buffer("k3", &[3, 3]);
    let g3 = c.buffer("g3", &[4 * IMG, 4 * IMG]);
    c.invoke(
        ops::conv2d("gconv3", 4 * IMG, 4 * IMG, 3),
        &[&up2, &k3, &g3],
        &[],
    );
    let skip = c.buffer("skip", &[4 * FLAT]);
    c.invoke(
        ops::residual_add("gskip", 4 * FLAT),
        &[&g3, &up2, &skip],
        &[],
    );
    let crop = c.buffer("crop", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(ops::dyn_window2d("crop", IMG), &[&skip, &crop], &[&h, &w]);
    let gate = c.buffer("gate", &[FLAT]);
    c.invoke(ops::sigmoid_op("disc_gate", FLAT), &[&crop, &gate], &[]);
    let wp = c.buffer("wp", &[1]);
    let proj = c.buffer("proj", &[FLAT]);
    c.invoke(ops::pointwise("proj", FLAT), &[&gate, &wp, &proj], &[]);
    let out = c.buffer("out", &[FLAT]);
    c.invoke(ops::relu_op("out", FLAT), &[&proj, &out], &[]);
    Workload::new("Tab. 2-6", c.build(), img_inputs())
}

/// Tab. 2-7 — DenseNet block with skip connections (8 ops).
pub fn dense_skip() -> Workload {
    let mut c = Chain::new();
    let x = c.buffer("x", &[IMG, IMG]);
    let k1 = c.buffer("k1", &[3, 3]);
    let f1 = c.buffer("f1", &[IMG, IMG]);
    c.invoke(ops::conv2d("dconv1", IMG, IMG, 3), &[&x, &k1, &f1], &[]);
    let a1 = c.buffer("a1", &[FLAT]);
    c.invoke(ops::relu_op("drelu1", FLAT), &[&f1, &a1], &[]);
    let cat1 = c.buffer("cat1", &[FLAT]);
    c.invoke(ops::residual_add("dcat1", FLAT), &[&a1, &x, &cat1], &[]);
    let k2 = c.buffer("k2", &[3, 3]);
    let f2 = c.buffer("f2", &[IMG, IMG]);
    c.invoke(ops::conv2d("dconv2", IMG, IMG, 3), &[&cat1, &k2, &f2], &[]);
    let a2 = c.buffer("a2", &[FLAT]);
    c.invoke(ops::relu_op("drelu2", FLAT), &[&f2, &a2], &[]);
    let cat2 = c.buffer("cat2", &[FLAT]);
    c.invoke(ops::residual_add("dcat2", FLAT), &[&a2, &cat1, &cat2], &[]);
    let crop = c.buffer("crop", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(ops::dyn_window2d("crop", IMG), &[&cat2, &crop], &[&h, &w]);
    let pooled = c.buffer("pooled", &[IMG / 2, IMG / 2]);
    c.invoke(ops::maxpool2d("dpool", IMG, IMG, 2), &[&crop, &pooled], &[]);
    Workload::new("Tab. 2-7", c.build(), img_inputs())
}

/// Tab. 2-8 — dilated convolutions + aggregation (6 ops).
pub fn dilated_aggre() -> Workload {
    let n = FLAT;
    let mut c = Chain::new();
    let x = c.buffer("x", &[n]);
    let w1 = c.buffer("w1", &[3]);
    let d1 = c.buffer("d1", &[n]);
    c.invoke(ops::dilated_conv("dil1", n, 3, 1), &[&x, &w1, &d1], &[]);
    let w2 = c.buffer("w2", &[3]);
    let d2 = c.buffer("d2", &[n]);
    c.invoke(ops::dilated_conv("dil2", n, 3, 2), &[&x, &w2, &d2], &[]);
    let w4 = c.buffer("w4", &[3]);
    let d4 = c.buffer("d4", &[n]);
    c.invoke(ops::dilated_conv("dil4", n, 3, 4), &[&x, &w4, &d4], &[]);
    let agg1 = c.buffer("agg1", &[n]);
    c.invoke(ops::residual_add("agg1", n), &[&d1, &d2, &agg1], &[]);
    let agg2 = c.buffer("agg2", &[n]);
    c.invoke(ops::residual_add("agg2", n), &[&agg1, &d4, &agg2], &[]);
    let out = c.buffer("out", &[n]);
    let len = c.param("len");
    c.invoke(ops::dyn_seq_mix("ctx", n), &[&agg2, &out], &[&len]);
    Workload::new("Tab. 2-8", c.build(), InputData::new().with("len", 64i64))
}

/// Tab. 2-9 — BEVFormer-style spatiotemporal sampling + attention (5 ops).
pub fn bevformer() -> Workload {
    let mut c = Chain::new();
    let feat = c.buffer("feat", &[FLAT]);
    let ids = c.buffer("ids", &[SEQ * DM]);
    let sampled = c.buffer("sampled", &[SEQ * DM]);
    c.invoke(
        ops::gather("bev_sample", SEQ * DM, FLAT),
        &[&feat, &ids, &sampled],
        &[],
    );
    let wq = c.buffer("wq", &[DM, DM]);
    let q = c.buffer("q", &[SEQ, DM]);
    c.invoke(ops::gemm("bev_q", SEQ, DM, DM), &[&sampled, &wq, &q], &[]);
    let scores = c.buffer("scores", &[SEQ, SEQ]);
    c.invoke(
        ops::gemm("bev_qk", SEQ, SEQ, DM),
        &[&q, &sampled, &scores],
        &[],
    );
    let tmp = c.buffer("tmp", &[1]);
    let attn = c.buffer("attn", &[SEQ * SEQ]);
    c.invoke(
        ops::softmax("bev_softmax", SEQ * SEQ),
        &[&scores, &tmp, &attn],
        &[],
    );
    let crop = c.buffer("crop", &[IMG, IMG]);
    let (h, w) = (c.param("h"), c.param("w"));
    c.invoke(
        ops::dyn_window2d("bev_crop", IMG),
        &[&attn, &crop],
        &[&h, &w],
    );
    Workload::new("Tab. 2-9", c.build(), img_inputs())
}

/// One transformer encoder block over `(SEQ, DM)` with `prefix`-scoped
/// names: 8 invocations.
fn encoder_block(c: &mut Chain, prefix: &str, input: &Ident, len: Option<&Ident>) -> Ident {
    let wq = c.buffer(&format!("{prefix}_wq"), &[DM, DM]);
    let q = c.buffer(&format!("{prefix}_q"), &[SEQ, DM]);
    c.invoke(
        ops::gemm(&format!("{prefix}_proj_q"), SEQ, DM, DM),
        &[input, &wq, &q],
        &[],
    );
    let wk = c.buffer(&format!("{prefix}_wk"), &[DM, DM]);
    let k = c.buffer(&format!("{prefix}_k"), &[SEQ, DM]);
    c.invoke(
        ops::gemm(&format!("{prefix}_proj_k"), SEQ, DM, DM),
        &[input, &wk, &k],
        &[],
    );
    let scores = c.buffer(&format!("{prefix}_scores"), &[SEQ, SEQ]);
    c.invoke(
        ops::gemm(&format!("{prefix}_qk"), SEQ, SEQ, DM),
        &[&q, &k, &scores],
        &[],
    );
    let tmp = c.buffer(&format!("{prefix}_tmp"), &[1]);
    let attn = c.buffer(&format!("{prefix}_attn"), &[SEQ * SEQ]);
    c.invoke(
        ops::softmax(&format!("{prefix}_softmax"), SEQ * SEQ),
        &[&scores, &tmp, &attn],
        &[],
    );
    let wv = c.buffer(&format!("{prefix}_wv"), &[SEQ, DM]);
    let ctx = c.buffer(&format!("{prefix}_ctx"), &[SEQ, DM]);
    c.invoke(
        ops::gemm(&format!("{prefix}_av"), SEQ, DM, SEQ),
        &[&attn, &wv, &ctx],
        &[],
    );
    let res = c.buffer(&format!("{prefix}_res"), &[SEQ * DM]);
    c.invoke(
        ops::residual_add(&format!("{prefix}_res"), SEQ * DM),
        &[&ctx, input, &res],
        &[],
    );
    let acc = c.buffer(&format!("{prefix}_lnacc"), &[2]);
    let ln = c.buffer(&format!("{prefix}_ln"), &[SEQ * DM]);
    c.invoke(
        ops::layer_norm(&format!("{prefix}_ln"), SEQ * DM),
        &[&res, &acc, &ln],
        &[],
    );
    match len {
        Some(len) => {
            let mixed = c.buffer(&format!("{prefix}_mix"), &[SEQ * DM]);
            c.invoke(
                ops::dyn_seq_mix(&format!("{prefix}_mix"), SEQ * DM),
                &[&ln, &mixed],
                &[len],
            );
            mixed
        }
        None => ln,
    }
}

/// Tab. 2-10 — BERT-base style encoder (12 ops).
pub fn bert_base() -> Workload {
    let mut c = Chain::new();
    let table = c.buffer("embed_table", &[64]);
    let ids = c.buffer("token_ids", &[SEQ * DM]);
    let emb = c.buffer("emb", &[SEQ * DM]);
    c.invoke(
        ops::gather("embed", SEQ * DM, 64),
        &[&table, &ids, &emb],
        &[],
    );
    let len = c.param("len");
    let enc = encoder_block(&mut c, "enc0", &emb, Some(&len));
    let wff = c.buffer("wff", &[DM, DM]);
    let ff = c.buffer("ff", &[SEQ, DM]);
    c.invoke(ops::gemm("ffn", SEQ, DM, DM), &[&enc, &wff, &ff], &[]);
    let act = c.buffer("act", &[SEQ * DM]);
    c.invoke(ops::relu_op("gelu", SEQ * DM), &[&ff, &act], &[]);
    let out = c.buffer("out", &[SEQ * DM]);
    c.invoke(
        ops::residual_add("ffres", SEQ * DM),
        &[&act, &enc, &out],
        &[],
    );
    Workload::new("Tab. 2-10", c.build(), seq_inputs())
}

/// Tab. 2-11 — ALBERT (13 ops: shared-parameter encoder + extra mixing).
pub fn albert() -> Workload {
    let mut c = Chain::new();
    let table = c.buffer("embed_table", &[64]);
    let ids = c.buffer("token_ids", &[SEQ * DM]);
    let emb = c.buffer("emb", &[SEQ * DM]);
    c.invoke(
        ops::gather("embed", SEQ * DM, 64),
        &[&table, &ids, &emb],
        &[],
    );
    let wp = c.buffer("wp", &[1]);
    let proj = c.buffer("proj", &[SEQ * DM]);
    c.invoke(
        ops::pointwise("factorized", SEQ * DM),
        &[&emb, &wp, &proj],
        &[],
    );
    let len = c.param("len");
    let enc = encoder_block(&mut c, "enc0", &proj, Some(&len));
    let wff = c.buffer("wff", &[DM, DM]);
    let ff = c.buffer("ff", &[SEQ, DM]);
    c.invoke(ops::gemm("ffn", SEQ, DM, DM), &[&enc, &wff, &ff], &[]);
    let act = c.buffer("act", &[SEQ * DM]);
    c.invoke(ops::relu_op("gelu", SEQ * DM), &[&ff, &act], &[]);
    let out = c.buffer("out", &[SEQ * DM]);
    c.invoke(
        ops::residual_add("ffres", SEQ * DM),
        &[&act, &enc, &out],
        &[],
    );
    Workload::new("Tab. 2-11", c.build(), seq_inputs())
}

/// Tab. 2-12 — T5-base style encoder-decoder (21 ops).
pub fn t5_base() -> Workload {
    let mut c = Chain::new();
    let table = c.buffer("embed_table", &[64]);
    let ids = c.buffer("token_ids", &[SEQ * DM]);
    let emb = c.buffer("emb", &[SEQ * DM]);
    c.invoke(
        ops::gather("embed", SEQ * DM, 64),
        &[&table, &ids, &emb],
        &[],
    );
    let len = c.param("len");
    let enc = encoder_block(&mut c, "enc0", &emb, None);
    let dec = encoder_block(&mut c, "dec0", &enc, Some(&len));
    let wff = c.buffer("wff", &[DM, DM]);
    let ff = c.buffer("ff", &[SEQ, DM]);
    c.invoke(ops::gemm("ffn", SEQ, DM, DM), &[&dec, &wff, &ff], &[]);
    let act = c.buffer("act", &[SEQ * DM]);
    c.invoke(ops::relu_op("gelu", SEQ * DM), &[&ff, &act], &[]);
    let out = c.buffer("out", &[SEQ * DM]);
    c.invoke(
        ops::residual_add("ffres", SEQ * DM),
        &[&act, &dec, &out],
        &[],
    );
    let logits = c.buffer("logits", &[SEQ, DM]);
    let wlm = c.buffer("wlm", &[DM, DM]);
    c.invoke(
        ops::gemm("lm_head", SEQ, DM, DM),
        &[&out, &wlm, &logits],
        &[],
    );
    let smtmp = c.buffer("smtmp", &[1]);
    let probs = c.buffer("probs", &[SEQ * DM]);
    c.invoke(
        ops::softmax("lm_softmax", SEQ * DM),
        &[&logits, &smtmp, &probs],
        &[],
    );
    Workload::new("Tab. 2-12", c.build(), seq_inputs())
}

/// Tab. 2-13 — RoBERTa (10 ops).
pub fn roberta() -> Workload {
    let mut c = Chain::new();
    let table = c.buffer("embed_table", &[64]);
    let ids = c.buffer("token_ids", &[SEQ * DM]);
    let emb = c.buffer("emb", &[SEQ * DM]);
    c.invoke(
        ops::gather("embed", SEQ * DM, 64),
        &[&table, &ids, &emb],
        &[],
    );
    let len = c.param("len");
    let enc = encoder_block(&mut c, "enc0", &emb, Some(&len));
    let wcls = c.buffer("wcls", &[DM, DM]);
    let cls = c.buffer("cls", &[SEQ, DM]);
    c.invoke(
        ops::gemm("cls_head", SEQ, DM, DM),
        &[&enc, &wcls, &cls],
        &[],
    );
    Workload::new("Tab. 2-13", c.build(), seq_inputs())
}

/// Tab. 2-14 — LLaMA-style decoder block (8 ops, RMSNorm + SiLU gate).
pub fn llama() -> Workload {
    let mut c = Chain::new();
    let x = c.buffer("x", &[SEQ * DM]);
    let acc = c.buffer("rmsacc", &[2]);
    let normed = c.buffer("normed", &[SEQ * DM]);
    c.invoke(
        ops::layer_norm("rmsnorm", SEQ * DM),
        &[&x, &acc, &normed],
        &[],
    );
    let wq = c.buffer("wq", &[DM, DM]);
    let q = c.buffer("q", &[SEQ, DM]);
    c.invoke(ops::gemm("wq_proj", SEQ, DM, DM), &[&normed, &wq, &q], &[]);
    let scores = c.buffer("scores", &[SEQ, SEQ]);
    c.invoke(ops::gemm("qk", SEQ, SEQ, DM), &[&q, &normed, &scores], &[]);
    let tmp = c.buffer("tmp", &[1]);
    let attn = c.buffer("attn", &[SEQ * SEQ]);
    c.invoke(
        ops::softmax("softmax", SEQ * SEQ),
        &[&scores, &tmp, &attn],
        &[],
    );
    let wv = c.buffer("wv", &[SEQ, DM]);
    let ctx = c.buffer("ctx", &[SEQ, DM]);
    c.invoke(ops::gemm("av", SEQ, DM, SEQ), &[&attn, &wv, &ctx], &[]);
    let gate = c.buffer("gate", &[SEQ * DM]);
    c.invoke(ops::sigmoid_op("silu", SEQ * DM), &[&ctx, &gate], &[]);
    let mixed = c.buffer("mixed", &[SEQ * DM]);
    let len = c.param("len");
    c.invoke(
        ops::dyn_seq_mix("kvwin", SEQ * DM),
        &[&gate, &mixed],
        &[&len],
    );
    let out = c.buffer("out", &[SEQ * DM]);
    c.invoke(ops::residual_add("res", SEQ * DM), &[&mixed, &x, &out], &[]);
    Workload::new("Tab. 2-14", c.build(), seq_inputs())
}

/// All fourteen workloads, in Table 2 order.
pub fn all() -> Vec<Workload> {
    vec![
        image_norm_cnn(),
        rb_dsc(),
        spp_fusion(),
        cbam_attention(),
        anchor_roialign(),
        gan_superres(),
        dense_skip(),
        dilated_aggre(),
        bevformer(),
        bert_base(),
        albert(),
        t5_base(),
        roberta(),
        llama(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmulator_ir::analysis;

    #[test]
    fn all_fourteen_simulate() {
        let ws = all();
        assert_eq!(ws.len(), 14);
        for w in &ws {
            let r = llmulator_sim::simulate(&w.program, &w.inputs)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(r.total_cycles > 0, "{}", w.name);
        }
    }

    #[test]
    fn op_counts_match_table2() {
        let expect = [8, 6, 8, 12, 5, 13, 8, 6, 5, 12, 13, 21, 10, 8];
        for (w, &n) in all().iter().zip(&expect) {
            assert_eq!(w.program.graph.op_count(), n, "{}", w.name);
        }
    }

    #[test]
    fn every_workload_has_dynamic_control_flow() {
        for w in all() {
            let report = analysis::analyze_program(&w.program);
            assert!(
                report.dynamic_param_count(&w.program) >= 1,
                "{} should have dynamic params",
                w.name
            );
        }
    }

    #[test]
    fn image_workloads_respond_to_input_size() {
        let w = image_norm_cnn();
        let small = llmulator_sim::simulate(&w.program, &w.scaled_inputs(0.5))
            .expect("small")
            .total_cycles;
        let large = llmulator_sim::simulate(&w.program, &w.scaled_inputs(1.5))
            .expect("large")
            .total_cycles;
        assert!(large > small, "{large} > {small}");
    }

    #[test]
    fn nlp_workloads_respond_to_text_length() {
        let w = bert_base();
        let short = llmulator_sim::simulate(&w.program, &w.scaled_inputs(0.5))
            .expect("short")
            .total_cycles;
        let long = llmulator_sim::simulate(&w.program, &w.scaled_inputs(2.0))
            .expect("long")
            .total_cycles;
        assert!(long > short, "{long} > {short}");
    }
}
