//! # llmulator-suite
//!
//! Integration surface for the LLMulator reproduction: re-exports the
//! workspace crates so examples and cross-crate tests have a single import
//! root. The actual functionality lives in the member crates:
//!
//! * [`llmulator`] — the paper's contribution (numeric prediction, DPO
//!   calibration, masked/cached attention),
//! * [`llmulator_ir`] / [`llmulator_hls`] / [`llmulator_sim`] — the dataflow
//!   IR and profiling substrate,
//! * [`llmulator_nn`] / [`llmulator_token`] — the learning substrate,
//! * [`llmulator_synth`] / [`llmulator_baselines`] /
//!   [`llmulator_workloads`] / [`llmulator_eval`] — data generation,
//!   comparison models, evaluation workloads and metrics.

pub use llmulator;
pub use llmulator_baselines;
pub use llmulator_eval;
pub use llmulator_hls;
pub use llmulator_ir;
pub use llmulator_nn;
pub use llmulator_sim;
pub use llmulator_synth;
pub use llmulator_token;
pub use llmulator_workloads;
