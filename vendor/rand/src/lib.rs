//! Vendored, offline-friendly stand-in for `rand`.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool,
//! gen}` and `seq::SliceRandom::{shuffle, choose}`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed
//! on every platform, which the test suites rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable uniformly over their "standard" domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Maps a random word to the unit interval [0, 1) with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable by `gen_range`. The single blanket
/// `SampleRange` impl per range type (mirroring upstream rand) is what lets
/// type inference unify the range's element type with the result type.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges that can produce a uniform sample (`Rng::gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random element selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
