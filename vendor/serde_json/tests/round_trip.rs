//! Round-trip tests for the vendored serde/serde_json pair, exercising the
//! hand-rolled derive macro on every supported shape.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
struct Newtype(String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(i64, f64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Unit;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mixed {
    A,
    B(u32, String),
    C { x: f64, y: Vec<bool> },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    name: String,
    tag: Newtype,
    values: Vec<f64>,
    optional: Option<u64>,
    missing: Option<u64>,
    map: BTreeMap<Newtype, Vec<Mixed>>,
    tuple: (u8, i64, String),
    boxed: Box<Pair>,
}

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value, "compact round trip through {json}");
    let pretty = serde_json::to_string_pretty(value).expect("serializes pretty");
    let back: T = serde_json::from_str(&pretty).expect("deserializes pretty");
    assert_eq!(&back, value, "pretty round trip");
}

#[test]
fn all_shapes_round_trip() {
    round_trip(&Newtype("hello \"quoted\" \\ world\n".to_string()));
    round_trip(&Pair(-42, 0.1 + 0.2));
    round_trip(&Unit);
    round_trip(&Mixed::A);
    round_trip(&Mixed::B(7, "b".to_string()));
    round_trip(&Mixed::C {
        x: -1.5e-9,
        y: vec![true, false],
    });

    let mut map = BTreeMap::new();
    map.insert(
        Newtype("k1".into()),
        vec![Mixed::A, Mixed::B(1, "x".into())],
    );
    map.insert(Newtype("k2".into()), vec![]);
    round_trip(&Nested {
        name: "n".into(),
        tag: Newtype("t".into()),
        values: vec![1.0, f64::MAX, f64::MIN_POSITIVE, 0.0, -0.0],
        optional: Some(9),
        missing: None,
        map,
        tuple: (1, -2, "three".into()),
        boxed: Box::new(Pair(5, 6.5)),
    });
}

#[test]
fn json_macro_builds_objects() {
    let line = serde_json::json!({
        "cost": {
            "power_mw": 1.5,
            "cycles": 10u64,
        },
        "name": "atax",
        "flags": [1, 2, 3],
    });
    let text = line.to_string();
    assert!(text.contains("\"power_mw\":1.5"));
    assert!(text.contains("\"name\":\"atax\""));
    assert!(text.contains("\"flags\":[1,2,3]"));
    let parsed = serde_json::parse_value(&text).expect("parses");
    assert_eq!(parsed, line);
}

#[test]
fn parse_errors_are_reported() {
    assert!(serde_json::from_str::<Pair>("[1, 2.0").is_err());
    assert!(serde_json::from_str::<Pair>("{\"a\": 1}").is_err());
    assert!(serde_json::from_str::<Newtype>("[17]").is_err());
}
