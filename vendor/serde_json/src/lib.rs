//! Vendored, offline-friendly stand-in for `serde_json`.
//!
//! Renders and parses the [`serde::Value`] data model as JSON text and
//! provides the `to_string` / `to_string_pretty` / `from_str` entry points
//! plus a [`json!`] literal macro — the subset this workspace uses.

pub use serde::Value;

use std::fmt;

/// Error type covering both syntax errors from the parser and data errors
/// surfaced by `Deserialize` impls.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string. Infallible for this data
/// model but keeps the `Result` signature for source compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render_compact(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render_pretty(0, &mut out);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

/// Converts a `json!`-macro leaf expression into a [`Value`] via `Serialize`.
pub fn to_value<T: serde::Serialize>(value: T) -> Value {
    value.serialize_value()
}

/// Builds a [`Value`] from a JSON-like literal. Supports nested objects,
/// arrays, and arbitrary `Serialize` expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value($item)),* ])
    };
    ({ $($body:tt)* }) => {
        $crate::json_object!(@pairs [] $($body)*)
    };
    ($other:expr) => { $crate::to_value($other) };
}

/// Implementation detail of [`json!`]: a token muncher that splits an object
/// body into `key: value` pairs, where a value is either a nested `{...}`
/// object or an arbitrary expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@pairs [$($pairs:tt)*] $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::json!({ $($inner)* }))] $($rest)*)
    };
    (@pairs [$($pairs:tt)*] $key:literal : { $($inner:tt)* }) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::json!({ $($inner)* }))])
    };
    (@pairs [$($pairs:tt)*] $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::json!([ $($inner)* ]))] $($rest)*)
    };
    (@pairs [$($pairs:tt)*] $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::json!([ $($inner)* ]))])
    };
    (@pairs [$($pairs:tt)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::to_value($value))] $($rest)*)
    };
    (@pairs [$($pairs:tt)*] $key:literal : $value:expr) => {
        $crate::json_object!(@pairs [$($pairs)* ($key, $crate::to_value($value))])
    };
    (@pairs [$(($key:literal, $value:expr))*]) => {
        $crate::Value::Object(vec![ $(($key.to_string(), $value)),* ])
    };
}
