//! Vendored, dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment cannot reach crates.io, so this proc-macro crate
//! parses the item's `TokenStream` by hand (no `syn`/`quote`) and generates
//! impls of the value-based traits defined in the vendored `serde` crate.
//!
//! Supported shapes — exactly what the workspace derives on:
//! * unit / tuple / named-field structs (any field visibility),
//! * enums with unit, tuple and struct variants,
//! * no generic parameters and no `#[serde(...)]` attributes (none are used
//!   in this workspace; encountering either is a compile error here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny item model
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (derived on `{name}`)");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive target must be struct or enum, got `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)` restriction group.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, tracking `<`/`>` depth so commas
/// inside generic types do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        fields.push(name);
        i += 1;
        // Skip `:` then the type, up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(n)) => ser_tuple_expr((0..*n).map(|i| format!("&self.{i}"))),
        Shape::Struct(Fields::Named(fields)) => {
            ser_named_expr(fields.iter().map(|f| (f.clone(), format!("self.{f}"))))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = ser_tuple_expr(binders.iter().cloned());
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inner = ser_named_expr(fields.iter().map(|f| (f.clone(), f.clone())));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn ser_tuple_expr(exprs: impl Iterator<Item = String>) -> String {
    let items: Vec<String> = exprs
        .map(|e| format!("::serde::Serialize::serialize_value({e})"))
        .collect();
    format!("::serde::Value::Array(vec![{}])", items.join(", "))
}

fn ser_named_expr(fields: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = fields
        .map(|(name, expr)| {
            format!("(\"{name}\".to_string(), ::serde::Serialize::serialize_value(&{expr}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Struct(Fields::Tuple(n)) => de_tuple_expr(name, *n, "__value"),
        Shape::Struct(Fields::Named(fields)) => de_named_expr(name, fields, "__value"),
        Shape::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(n) => {
                        let ctor = de_tuple_expr(&format!("{name}::{vname}"), *n, "__inner");
                        obj_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }}\n"));
                    }
                    Fields::Named(fields) => {
                        let ctor = de_named_expr(&format!("{name}::{vname}"), fields, "__inner");
                        obj_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }}\n"));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {str_arms}\
                         __other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {obj_arms}\
                             __other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::expected(\"variant\", \"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn de_tuple_expr(ctor: &str, n: usize, source: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
        .collect();
    format!(
        "match {source} {{\n\
             ::serde::Value::Array(__items) if __items.len() == {n} => Ok({ctor}({})),\n\
             __other => Err(::serde::DeError::expected(\"array of {n}\", \"{ctor}\", __other)),\n\
         }}",
        items.join(", ")
    )
}

fn de_named_expr(ctor: &str, fields: &[String], source: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(::serde::field(__pairs, \"{f}\")?)?"
            )
        })
        .collect();
    format!(
        "match {source} {{\n\
             ::serde::Value::Object(__pairs) => Ok({ctor} {{ {} }}),\n\
             __other => Err(::serde::DeError::expected(\"object\", \"{ctor}\", __other)),\n\
         }}",
        items.join(", ")
    )
}
