//! Vendored, offline-friendly stand-in for `criterion`.
//!
//! Implements the subset this workspace uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurements are simple wall-clock means —
//! enough to report relative latencies without the statistical machinery.

use std::time::Instant;

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        total_nanos: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total_nanos / bencher.iterations as f64;
        println!(
            "{name:<40} {:>12.1} ns/iter ({} iters)",
            mean, bencher.iterations
        );
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    total_nanos: f64,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // One untimed warm-up pass.
        black_box(payload());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(payload());
        }
        self.total_nanos += start.elapsed().as_nanos() as f64;
        self.iterations += self.sample_size as u64;
    }
}

/// Declares a benchmark group function compatible with upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
