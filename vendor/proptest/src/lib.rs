//! Vendored, offline-friendly stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over the
//! primitive numeric types, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest, case generation is **fully deterministic**:
//! every test function draws from an RNG seeded with a fixed constant (or
//! `PROPTEST_SEED` if set), so CI runs are reproducible without a
//! `proptest-regressions/` corpus. Failures print the case number and seed
//! so a failing case can be replayed exactly.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration: how many cases each property is checked with.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Base seed for case generation. Override with `PROPTEST_SEED` to explore
/// a different deterministic sequence.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x4c4c_4d55_4c41_544f) // "LLMULATO"
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from a regex subset, mirroring proptest's `&str`
/// strategy: a sequence of character classes (`[...]`, `\PC`, literals,
/// escapes) each with an optional `{m,n}` / `{n}` quantifier.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let spec = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string strategy `{self}`: {e}"));
        let mut out = String::new();
        for (set, min, max) in &spec {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                out.push(pick_char(set, rng));
            }
        }
        out
    }
}

type CharSet = Vec<(char, char)>;

fn pick_char(set: &CharSet, rng: &mut StdRng) -> char {
    let total: u32 = set.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
    let mut idx = rng.gen_range(0..total);
    for (lo, hi) in set {
        let span = *hi as u32 - *lo as u32 + 1;
        if idx < span {
            return char::from_u32(*lo as u32 + idx).unwrap_or(*lo);
        }
        idx -= span;
    }
    unreachable!("index within total")
}

fn parse_pattern(pattern: &str) -> Result<Vec<(CharSet, usize, usize)>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut items = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut set = CharSet::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        escape_char(*chars.get(i).ok_or("trailing backslash")?)?
                    } else {
                        chars[i]
                    };
                    // Range `c-d` (a trailing `-` is a literal).
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']')
                    {
                        i += 2;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            escape_char(chars[i])?
                        } else {
                            chars[i]
                        };
                        set.push((c, hi));
                    } else {
                        set.push((c, c));
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return Err("unterminated character class".into());
                }
                i += 1; // `]`
                set
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    // `\PC`: any char outside the Unicode "Other" category;
                    // approximated by printable ASCII plus Latin-1/Greek.
                    Some('P') if chars.get(i + 1) == Some(&'C') => {
                        i += 2;
                        vec![(' ', '~'), ('\u{a1}', '\u{2ff}'), ('\u{370}', '\u{3ff}')]
                    }
                    Some(&c) => {
                        let e = escape_char(c)?;
                        i += 1;
                        vec![(e, e)]
                    }
                    None => return Err("trailing backslash".into()),
                }
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .ok_or("unterminated quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().map_err(|_| "bad quantifier")?,
                    hi.trim().parse().map_err(|_| "bad quantifier")?,
                ),
                None => {
                    let n = body.trim().parse().map_err(|_| "bad quantifier")?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        items.push((set, min, max));
    }
    Ok(items)
}

fn escape_char(c: char) -> Result<char, String> {
    Ok(match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        '\\' | '-' | ']' | '[' | '{' | '}' | '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^'
        | '$' | '/' | '\'' | '"' | ' ' => c,
        other => return Err(format!("unsupported escape `\\{other}`")),
    })
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Runs `body` for each case with a per-case deterministic RNG. Used by the
/// `proptest!` macro; not intended to be called directly.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    let seed = base_seed();
    for case in 0..config.cases {
        // Decorrelate cases while keeping each one individually replayable.
        let case_seed = seed
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(case as u64)
            ^ hash_name(test_name);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest: `{test_name}` failed at case {case}/{} (replay with PROPTEST_SEED={seed})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across platforms and rustc versions.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u64..100, y in 0u64..100) {
///         prop_assert!(x + y < 200);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( ($config:expr) ) => {};
}

/// `assert!` with proptest-compatible spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `assert_eq!` with proptest-compatible spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// `assert_ne!` with proptest-compatible spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}
