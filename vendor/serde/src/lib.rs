//! Vendored, offline-friendly stand-in for `serde`.
//!
//! The real crates.io `serde` is unreachable in this build environment, so
//! this crate provides the subset the workspace actually uses: the
//! `Serialize` / `Deserialize` traits (JSON-value based rather than
//! visitor based), derive macros re-exported from `serde_derive`, and a
//! self-describing [`Value`] data model that `serde_json` renders/parses.
//!
//! The derive macros and the trait impls below are mutually consistent:
//! anything serialized by this crate deserializes back to an equal value.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Self-describing data model (a superset of JSON values).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Compact JSON rendering (used by `serde_json::to_string` and `Display`).
    pub fn render_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => render_f64(*x, out),
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn render_pretty(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.render_pretty(indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty(indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.render_compact(out),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            // Integers compare numerically regardless of signedness variant
            // (a parsed `1` is U64 while a serialized `1i32` is I64).
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::I64(a), Value::U64(b)) | (Value::U64(b), Value::I64(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::F64(a), Value::F64(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render_compact(&mut s);
        f.write_str(&s)
    }
}

fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips through
        // `str::parse::<f64>`, and always contains '.' or 'e' so the parser
        // classifies it as a float again.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deserialization error with a breadcrumb of what was expected.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    pub fn expected(what: &str, context: &str, got: &Value) -> DeError {
        DeError::new(format!("expected {what} for {context}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

/// Field lookup helper used by derive-generated `Deserialize` impls.
pub fn field<'v>(pairs: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    other => Err(DeError::expected("unsigned integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(x) if x.fract() == 0.0 => Ok(*x as $t),
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null; accept them back.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            // A present value is wrapped so `Some(None)`-style nesting and
            // option-of-float (whose NaN also renders as null) stay lossless.
            Some(v) => Value::Array(vec![v.serialize_value()]),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            Value::Array(items) if items.len() == 1 => Ok(Some(T::deserialize_value(&items[0])?)),
            other => Err(DeError::expected("null or [value]", "Option", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", "VecDeque", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

// Maps and sets serialize as arrays of entries so that non-string keys
// (e.g. newtype idents) round-trip without a string-key requirement.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
            .collect();
        entries.sort_by_key(|a| a.to_string());
        Value::Array(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

fn map_entries(value: &Value) -> Result<impl Iterator<Item = (&Value, &Value)>, DeError> {
    match value {
        Value::Array(items) => {
            for item in items {
                match item {
                    Value::Array(pair) if pair.len() == 2 => {}
                    other => return Err(DeError::expected("[key, value] pair", "map", other)),
                }
            }
            Ok(items.iter().map(|item| match item {
                Value::Array(pair) => (&pair[0], &pair[1]),
                _ => unreachable!("validated above"),
            }))
        }
        other => Err(DeError::expected("array of entries", "map", other)),
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", "BTreeSet", other)),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        rendered.sort_by_key(|a| a.to_string());
        Value::Array(rendered)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", "HashSet", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", "tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", "()", other)),
        }
    }
}
